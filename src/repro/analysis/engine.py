"""The reprolint engine: walk, parse once, run checkers, report.

One :class:`ParsedModule` is built per file (source lines, AST, resolved
import table, inline suppressions) and every checker runs over that shared
parse, so adding a checker costs one AST walk, not one file read.

Findings flow through two filters before they fail a run:

* **inline suppressions** -- ``# reprolint: disable=RULE`` on the finding
  line.  Suppressed findings are dropped from the failure set but the
  suppressions themselves are counted and reported (and flagged when they
  carry no `` -- justification`` trailer).
* **baseline** -- a committed burn-down file of pre-existing findings
  (see :func:`load_baseline`).  Baselined findings are reported as
  "baselined", never as failures, so a legacy tree can adopt a new checker
  without a flag day while new violations still fail CI.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.imports import ImportTable

#: Directories walked by default, relative to the repo root.
DEFAULT_ROOTS: Tuple[str, ...] = ("src", "scripts", "benchmarks", "examples")

#: Directory names never descended into.
SKIPPED_DIRS = {"__pycache__", ".git", ".pytest_cache", ".hypothesis",
                "build", "dist"}


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every checker."""

    path: Path               #: absolute path on disk
    rel_path: str            #: repo-relative posix path (finding identity)
    source: str
    lines: List[str]
    tree: ast.Module
    module_name: Optional[str]   #: dotted name for files under ``src/``
    imports: ImportTable
    suppressions: List[Suppression]

    @property
    def package(self) -> Optional[str]:
        """The top-level repro package (``storage``, ``api``, ...)."""
        if not self.module_name:
            return None
        parts = self.module_name.split(".")
        if len(parts) < 2 or parts[0] != "repro" or \
                parts[1] == "__init__":
            return None
        return parts[1]

    def in_repro(self) -> bool:
        return self.module_name is not None

    def suppressed_rules_on(self, line: int) -> Set[str]:
        return {rule for suppression in self.suppressions
                if suppression.applies_to == line
                for rule in suppression.rules}


def parse_module(path: Path, root: Path) -> Optional[ParsedModule]:
    """Parse one file; ``None`` when it is not valid Python."""
    rel_path = path.relative_to(root).as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError:
        return None
    module_name = _module_name_for(rel_path)
    lines = source.splitlines()
    return ParsedModule(
        path=path, rel_path=rel_path, source=source, lines=lines,
        tree=tree, module_name=module_name,
        imports=ImportTable(tree, module_name),
        suppressions=parse_suppressions(rel_path, lines))


def _module_name_for(rel_path: str) -> Optional[str]:
    """``src/repro/storage/wal.py`` -> ``repro.storage.wal``."""
    if not rel_path.startswith("src/"):
        return None
    parts = rel_path[len("src/"):].split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][:-len(".py")]
    return ".".join(parts)


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.findings)

    def unjustified_suppressions(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.justified]

    def summary(self) -> str:
        parts = [f"{self.files_checked} files checked",
                 f"{len(self.findings)} finding(s)"]
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        if self.suppressed or self.suppressions:
            parts.append(f"{len(self.suppressions)} inline suppression(s) "
                         f"({len(self.unjustified_suppressions())} "
                         f"unjustified)")
        return ", ".join(parts)


class LintEngine:
    """Walk the tree, run every checker, and assemble a report."""

    def __init__(self, root: Path, checkers: Optional[Sequence] = None,
                 roots: Sequence[str] = DEFAULT_ROOTS):
        from repro.analysis.checkers import default_checkers
        self.root = Path(root)
        self.checkers = list(checkers) if checkers is not None \
            else default_checkers()
        self.roots = tuple(roots)

    # -- file discovery ----------------------------------------------------

    def discover(self, paths: Optional[Sequence[Path]] = None) -> List[Path]:
        """Every Python file under the configured roots, sorted."""
        if paths:
            out: List[Path] = []
            for given in paths:
                given = Path(given)
                if given.is_dir():
                    out.extend(self._walk(given))
                else:
                    out.append(given)
            return sorted(set(out))
        found: List[Path] = []
        for root_name in self.roots:
            base = self.root / root_name
            if base.is_dir():
                found.extend(self._walk(base))
        return sorted(found)

    def _walk(self, base: Path) -> Iterable[Path]:
        for path in sorted(base.rglob("*.py")):
            if any(part in SKIPPED_DIRS for part in path.parts):
                continue
            yield path

    # -- running -----------------------------------------------------------

    def run(self, paths: Optional[Sequence[Path]] = None,
            baseline: Optional[Set[str]] = None) -> LintReport:
        report = LintReport()
        baseline = baseline or set()
        for path in self.discover(paths):
            module = parse_module(path, self.root)
            if module is None:
                report.findings.append(Finding(
                    rule="ENG001", path=path.relative_to(self.root)
                    .as_posix(), line=1,
                    message="file does not parse as Python",
                    hint="fix the syntax error"))
                continue
            report.files_checked += 1
            report.suppressions.extend(module.suppressions)
            for checker in self.checkers:
                for finding in checker.check(module):
                    if finding.rule in \
                            module.suppressed_rules_on(finding.line):
                        report.suppressed.append(finding)
                    elif finding.baseline_key() in baseline:
                        report.baselined.append(finding)
                    else:
                        report.findings.append(finding)
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)
        report.baselined.sort(key=Finding.sort_key)
        return report


# -- baseline files --------------------------------------------------------

BASELINE_HEADER = (
    "# reprolint baseline -- pre-existing findings burned down over time.\n"
    "# One `path|RULE|line` key per line, sorted and deduplicated.\n"
    "# Regenerate with: python scripts/reprolint.py --write-baseline\n")


def load_baseline(path: Path) -> Set[str]:
    """The baseline keys in ``path`` (empty when the file is absent)."""
    if not path.exists():
        return set()
    keys: Set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render findings as a sorted, deduplicated baseline file body."""
    keys = sorted({finding.baseline_key() for finding in findings})
    body = "".join(f"{key}\n" for key in keys)
    return BASELINE_HEADER + body


def baseline_is_normalised(text: str) -> bool:
    """True when the baseline body is sorted and free of duplicates."""
    entries = [line.strip() for line in text.splitlines()
               if line.strip() and not line.strip().startswith("#")]
    return entries == sorted(set(entries))
