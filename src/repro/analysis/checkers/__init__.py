"""Pluggable reprolint checkers.

A checker is a class with a ``RULES`` table (rule id -> one-line
description) and a ``check(module: ParsedModule) -> Iterable[Finding]``
method.  :func:`default_checkers` instantiates the shipped set; the engine
accepts any sequence of checker instances, so a new invariant is one new
module here plus a registration line below (see ARCHITECTURE.md, "Static
analysis & invariants").
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.checkers.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.layering import LayeringChecker
from repro.analysis.checkers.metric_registry import MetricRegistryChecker
from repro.analysis.checkers.api_boundary import ApiBoundaryChecker
from repro.analysis.checkers.exceptions import ExceptionHygieneChecker

#: Checker classes shipped with the framework, in report order.
ALL_CHECKERS = (
    DeterminismChecker,
    LayeringChecker,
    MetricRegistryChecker,
    ApiBoundaryChecker,
    ExceptionHygieneChecker,
)


def default_checkers() -> List[Checker]:
    return [cls() for cls in ALL_CHECKERS]


def rule_catalogue() -> Dict[str, str]:
    """Every known rule id and its one-line description."""
    catalogue: Dict[str, str] = {}
    for cls in ALL_CHECKERS:
        catalogue.update(cls.RULES)
    return catalogue


__all__ = [
    "ALL_CHECKERS",
    "ApiBoundaryChecker",
    "Checker",
    "DeterminismChecker",
    "ExceptionHygieneChecker",
    "LayeringChecker",
    "MetricRegistryChecker",
    "default_checkers",
    "rule_catalogue",
]
