"""The checker interface."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.analysis.findings import Finding


class Checker:
    """One invariant family: a rule table plus an AST pass."""

    #: rule id -> one-line description (drives ``--list-rules`` and docs).
    RULES: Dict[str, str] = {}

    def check(self, module) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__
