"""Layering: the declared package DAG of ``layers.toml``, enforced.

Fencing epochs ride WAL positions, CDC rides replication cursors, the API
rides the core -- the whole correctness story assumes the package layers
stack one way.  ``grep``-era enforcement missed ``from repro.api import
session as s``; this checker resolves every import through the alias-aware
:class:`~repro.analysis.imports.ImportTable` (including lazy
function-local imports, which are real runtime edges) and validates each
edge against ``analysis/layers.toml``:

``LAY000``
    The declaration itself is broken: a package references an undeclared
    package, or the declared graph has a cycle.  Reported against the
    config file so a bad edit cannot silently disable the checker.

``LAY001``
    A module imports a repro package its layer is not granted.

``LAY002``
    A module belongs to a package missing from the ``[layers]`` table but
    imports from repro -- new packages must be placed in the DAG before
    they grow dependencies.

``if TYPE_CHECKING:`` imports never execute and are exempt; deliberate
runtime exceptions are module-scoped grants under ``[exceptions]`` with a
justification comment in the TOML.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding

DEFAULT_LAYERS_FILE = Path(__file__).resolve().parent.parent / "layers.toml"


def parse_layers_toml(text: str) -> Tuple[Dict[str, List[str]],
                                          Dict[str, List[str]]]:
    """Parse the restricted TOML subset layers.toml uses.

    Handled: ``[section]`` headers, ``key = [ "a", "b" ]`` (single line or
    spanning lines), quoted keys, ``#`` comments.  A hand-rolled parser
    keeps the linter dependency-free on every supported interpreter
    (``tomllib`` is 3.11+ and this repo supports 3.9).
    """
    layers: Dict[str, List[str]] = {}
    exceptions: Dict[str, List[str]] = {}
    section: Optional[Dict[str, List[str]]] = None
    pending_key: Optional[str] = None
    pending_items: List[str] = []
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if pending_key is not None:
            pending_items.extend(_quoted_strings(line))
            if line.endswith("]"):
                if section is not None:
                    section[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            section = {"layers": layers, "exceptions": exceptions}.get(name)
            continue
        if "=" in line:
            key, _, value = line.partition("=")
            key = key.strip().strip('"').strip("'")
            value = value.strip()
            if value.startswith("[") and not value.endswith("]"):
                pending_key = key
                pending_items = _quoted_strings(value)
                continue
            if section is not None:
                section[key] = _quoted_strings(value)
    return layers, exceptions


def _strip_comment(line: str) -> str:
    out = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            break
        out.append(char)
    return "".join(out)


def _quoted_strings(fragment: str) -> List[str]:
    items: List[str] = []
    rest = fragment
    while '"' in rest:
        _, _, rest = rest.partition('"')
        item, quote, rest = rest.partition('"')
        if not quote:
            break
        items.append(item)
    return items


def find_cycle(graph: Dict[str, List[str]]) -> Optional[List[str]]:
    """A cycle in the declared graph, or ``None`` when it is a DAG."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        colour[node] = GREY
        stack.append(node)
        for dep in graph.get(node, []):
            if dep not in graph:
                continue
            if colour[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if colour[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        colour[node] = BLACK
        return None

    for node in sorted(graph):
        if colour[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


class LayeringChecker(Checker):

    RULES = {
        "LAY000": "layers.toml itself is invalid (unknown package "
                  "reference or declared cycle)",
        "LAY001": "import crosses the declared layer DAG",
        "LAY002": "package missing from the layers.toml DAG imports "
                  "from repro",
    }

    def __init__(self, layers_file: Optional[Path] = None):
        self.layers_file = Path(layers_file or DEFAULT_LAYERS_FILE)
        self.layers, self.exceptions = parse_layers_toml(
            self.layers_file.read_text(encoding="utf-8"))
        self.config_findings = list(self._validate_config())

    def _validate_config(self) -> Iterable[Finding]:
        config_path = self.layers_file.name
        for package, deps in sorted(self.layers.items()):
            for dep in deps:
                if dep not in self.layers:
                    yield Finding(
                        rule="LAY000", path=config_path, line=1,
                        message=f"[layers] {package} references undeclared "
                                f"package {dep!r}",
                        hint="declare the package in layers.toml")
        cycle = find_cycle(self.layers)
        if cycle:
            yield Finding(
                rule="LAY000", path=config_path, line=1,
                message="declared layer graph has a cycle: "
                        + " -> ".join(cycle),
                hint="break the cycle; the layer map must be a DAG")

    def check(self, module) -> Iterable[Finding]:
        findings: List[Finding] = []
        if module.module_name == "repro.__init__":
            # The root package only re-exports the version marker.
            return findings
        if self.config_findings and module.rel_path.startswith("src/repro/"):
            # Report config breakage once, against the first repro module,
            # rather than silently checking against a broken map.
            findings.extend(self.config_findings)
            self.config_findings = []
        package = module.package
        if package is None:
            return findings
        allowed = self.layers.get(package)
        granted_prefixes = self._granted(module.module_name)
        for record in module.imports.repro_dependencies():
            if record.type_only:
                continue
            target = self._target_package(record.module)
            if target is None or target == package:
                continue
            if any(record.module == prefix or
                   record.module.startswith(prefix + ".")
                   for prefix in granted_prefixes):
                continue
            if allowed is None:
                findings.append(Finding(
                    rule="LAY002", path=module.rel_path, line=record.line,
                    message=f"package {package!r} is not declared in "
                            f"layers.toml but imports repro.{target}",
                    hint="add the package to the [layers] DAG"))
                continue
            if target not in allowed:
                findings.append(Finding(
                    rule="LAY001", path=module.rel_path, line=record.line,
                    message=f"layer {package!r} may not import "
                            f"repro.{target} (allowed: "
                            f"{', '.join(allowed) or 'nothing'})",
                    hint="invert the dependency or grant a justified "
                         "[exceptions] entry in layers.toml"))
        return findings

    def _granted(self, module_name: Optional[str]) -> List[str]:
        if not module_name:
            return []
        return self.exceptions.get(module_name, [])

    @staticmethod
    def _target_package(module: str) -> Optional[str]:
        parts = module.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return None
        return parts[1]
