"""Exception hygiene: no swallowed failures, no dropped causal chains.

Failures in this repo carry structure: storage raises ``FencedError`` with
the fencing epoch on it, the pipeline maps exception types to
``ResultCode`` values, and the retry stage keys re-location off exactly
those types.  Two handler shapes destroy that structure:

``EXC001``
    A bare ``except:`` (or ``except Exception/BaseException:``) whose body
    only ``pass``es/``continue``s -- the handler swallows *every* failure,
    including ``ResultCode``-bearing ones the pipeline must see and the
    ``KeyboardInterrupt``-family a bare except also eats.

``EXC002``
    Raising a *new* exception inside an ``except`` handler without ``from``
    -- the implicit-context re-raise drops the deliberate causal chain, so
    a ``FencedError``'s epoch (and any ``ResultCode`` mapping on the
    original) is no longer reachable from the surfaced error.  Use
    ``raise New(...) from err`` (or an explicit ``from None`` when the
    cause is genuinely irrelevant).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding

#: Handler types that catch everything (plus ``None`` for bare except).
CATCH_ALL_NAMES = {"Exception", "BaseException"}


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in CATCH_ALL_NAMES
    return False


def _body_only_swallows(body: List[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass) or \
                isinstance(statement, ast.Continue):
            continue
        if isinstance(statement, ast.Expr) and \
                isinstance(statement.value, ast.Constant):
            continue  # docstring / ellipsis placeholder
        return False
    return True


class ExceptionHygieneChecker(Checker):

    RULES = {
        "EXC001": "catch-all except handler swallows ResultCode-bearing "
                  "failures",
        "EXC002": "raise inside an except handler without 'from' drops "
                  "the causal chain (and any fencing epoch on it)",
    }

    def check(self, module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_catch_all(node) and _body_only_swallows(node.body):
                findings.append(Finding(
                    rule="EXC001", path=module.rel_path, line=node.lineno,
                    message="catch-all handler silently swallows every "
                            "failure, including ResultCode-bearing ones",
                    hint="catch the specific exception types, or record/"
                         "re-raise the failure"))
            findings.extend(self._check_chain_drops(module, node))
        return findings

    def _check_chain_drops(self, module,
                           handler: ast.ExceptHandler) -> Iterable[Finding]:
        for node in _scoped_raises(handler.body):
            if node.exc is None or node.cause is not None:
                continue  # bare re-raise, or explicit from X / from None
            if not isinstance(node.exc, ast.Call):
                continue  # ``raise err`` re-raises the caught object
            yield Finding(
                rule="EXC002", path=module.rel_path, line=node.lineno,
                message="new exception raised in an except handler "
                        "without 'from' -- the original failure (and "
                        "any fencing epoch it carries) is dropped",
                hint="raise ... from <caught>, or an explicit "
                     "'from None' when the cause is irrelevant")


def _scoped_raises(body: List[ast.stmt]) -> Iterable[ast.Raise]:
    """Every ``raise`` executing in this handler's own frame.

    Skips nested function/class bodies (their raises run in a different
    frame, later) and nested except handlers (which report their own
    findings) -- but still descends into ``try`` bodies, loops and
    conditionals, whose raises do execute here.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda, ast.ExceptHandler)):
            continue
        if isinstance(node, ast.Raise):
            yield node
        stack.extend(ast.iter_child_nodes(node))
