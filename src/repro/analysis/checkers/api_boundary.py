"""API boundary: experiments and examples ride the typed session API.

The AST-accurate replacement for the grep that used to live in
``scripts/check_api_boundaries.py`` (that script is now a thin shim over
this checker).  The grep missed aliased imports (``from repro.ldap.
operations import SearchRequest as SR``), matched commented-out code, and
could not see through local rebinding; the AST pass resolves origins.

``API001``
    Raw LDAP request construction (``SearchRequest(...)``,
    ``ModifyRequest``, ``AddRequest``, ``DeleteRequest``, ``LdapRequest``)
    inside the policed trees.  The LDAP encoding lives only in
    ``api/operations.py`` -- workload code issues typed
    ``Read``/``Search``/``Write``/``Provision`` operations.

``API002``
    Calls into the deprecated facade shims ``udr.execute`` / ``udr.submit``
    / ``udr.call`` / ``udr.execute_batch`` (on any name bound to the
    facade, including simple local aliases).  Going through the core
    explicitly (``udr.pipeline.execute``, ``udr.dispatcher.submit``) stays
    legal: those receivers are not the facade itself.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding
from repro.analysis.imports import attribute_chain

#: Trees where raw requests / legacy shims are forbidden.
POLICED_PREFIXES = ("src/repro/experiments/", "examples/")

#: Raw-request constructors (defined in repro/ldap/operations.py).
REQUEST_CLASSES = {"SearchRequest", "ModifyRequest", "AddRequest",
                   "DeleteRequest", "LdapRequest"}

#: The deprecated facade entry points.
LEGACY_SHIMS = {"execute", "submit", "call", "execute_batch"}


class ApiBoundaryChecker(Checker):

    RULES = {
        "API001": "raw LDAP request construction outside the API layer",
        "API002": "call into a deprecated udr.execute/submit/call/"
                  "execute_batch facade shim",
    }

    def check(self, module) -> Iterable[Finding]:
        if not module.rel_path.startswith(POLICED_PREFIXES):
            return []
        findings: List[Finding] = []
        facade_names = self._facade_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            findings.extend(self._check_raw_request(module, node))
            findings.extend(
                self._check_legacy_shim(module, node, facade_names))
        return findings

    # -- API001 ------------------------------------------------------------

    def _check_raw_request(self, module,
                           node: ast.Call) -> Iterable[Finding]:
        name = self._request_class_name(module, node.func)
        if name is None:
            return
        yield Finding(
            rule="API001", path=module.rel_path, line=node.lineno,
            message=f"raw {name} construction bypasses the typed "
                    f"session API",
            hint="issue a typed repro.api operation "
                 "(Read/Search/Write/Provision) through a session")

    def _request_class_name(self, module, func: ast.expr):
        """The request class a call target resolves to, alias-aware."""
        target = module.imports.resolve_call_target(func)
        if target is not None:
            leaf = target.split(".")[-1]
            if leaf in REQUEST_CLASSES and \
                    target.startswith("repro.ldap"):
                return leaf
            if target.startswith("repro.") and leaf in REQUEST_CLASSES:
                return leaf
        # Unresolved surface spelling (star import, helper-built alias):
        # fall back to the literal name, same net as the old grep.
        chain = attribute_chain(func)
        if chain and chain[-1] in REQUEST_CLASSES:
            return chain[-1]
        return None

    # -- API002 ------------------------------------------------------------

    def _facade_aliases(self, module) -> Set[str]:
        """Names plausibly bound to the facade: ``udr`` plus simple local
        aliases (``u = udr``)."""
        names = {"udr"}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Name) or \
                        node.value.id not in names:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id not in names:
                        names.add(target.id)
                        changed = True
        return names

    def _check_legacy_shim(self, module, node: ast.Call,
                           facade_names: Set[str]) -> Iterable[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in LEGACY_SHIMS:
            return
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return
        # The receiver is the chain minus the shim attribute; flag when it
        # IS the facade (``udr`` / an alias / ``self.udr``), not when the
        # call reaches through it into the core (``udr.pipeline.execute``).
        receiver = chain[:-1]
        if receiver[-1] not in facade_names:
            return
        yield Finding(
            rule="API002", path=module.rel_path, line=node.lineno,
            message=f"deprecated facade shim udr.{func.attr}() -- counted "
                    f"under api.legacy_calls at runtime",
            hint="use a Session (submit/call/submit_many) or reach the "
                 "core explicitly (udr.pipeline / udr.dispatcher)")
