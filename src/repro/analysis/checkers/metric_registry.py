"""Metric hygiene: every emitted metric name must be registered.

The benchmark gates, the pinned-counter stability tests and every
dashboard key on *exact* metric names; a typo (``replication.mux.wakeup``
vs ``.wakeups``) silently splits a counter in two and zeroes a gate.  The
registry (``analysis/metric_registry.txt``) is generated from the tree and
seeded from the pinned universe in ``tests/test_metrics_stability.py`` --
regenerate with ``scripts/generate_metric_registry.py`` -- so adding a
metric is a deliberate, reviewable one-line diff.

``MET001``
    A string literal passed to a collector emission method
    (``increment``/``set_gauge``/``latency``/``histogram``/... or the
    ``_count`` wrapper convention) that matches no registry entry.

``MET002``
    An f-string metric name whose literal skeleton (interpolations
    wildcarded to ``*``) matches no registry pattern -- catches typos in
    the fixed parts of dynamic names like ``api.client.{name}.requests``.

Names forwarded through plain variables are wrapper plumbing and are
skipped: the literal is checked where it is written, which is where typos
are made.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Set

from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding

DEFAULT_REGISTRY_FILE = Path(__file__).resolve().parent.parent / \
    "metric_registry.txt"

#: Collector methods that *emit* under a name (reads are unconstrained).
EMISSION_METHODS = {
    "increment", "set_gauge", "set_gauge_max", "latency", "histogram",
    "outcomes", "consistency", "_count",
}


def load_registry(path: Path) -> List[str]:
    entries: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def pattern_to_regex(pattern: str) -> "re.Pattern[str]":
    """A registry entry as a regex; ``*`` matches one-or-more characters."""
    return re.compile(
        "^" + ".+".join(re.escape(part) for part in pattern.split("*"))
        + "$")


class MetricRegistryChecker(Checker):

    RULES = {
        "MET001": "metric name literal not in the generated registry",
        "MET002": "f-string metric name matches no registry pattern",
    }

    def __init__(self, registry_file: Optional[Path] = None):
        self.registry_file = Path(registry_file or DEFAULT_REGISTRY_FILE)
        self.entries = load_registry(self.registry_file)
        self._patterns = [pattern_to_regex(entry) for entry in self.entries]

    def known(self, name: str) -> bool:
        """True when ``name`` (possibly itself wildcarded) is registered.

        An f-string skeleton like ``api.client.*.requests`` matches a
        registry pattern because ``.+`` happily consumes the ``*``
        placeholder character; exact names match exactly.
        """
        return any(pattern.match(name) for pattern in self._patterns)

    def check(self, module) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in EMISSION_METHODS:
                continue
            for name in self._candidate_names(node.args[0]):
                findings.extend(self._check_name(module, node, name))
        return findings

    def _candidate_names(self, arg: ast.expr) -> Iterable[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield arg.value
        elif isinstance(arg, ast.JoinedStr):
            yield "".join(
                value.value if isinstance(value, ast.Constant) else "*"
                for value in arg.values)
        elif isinstance(arg, ast.IfExp):
            # ``"a" if flag else "b"`` -- both arms are emitted names.
            yield from self._candidate_names(arg.body)
            yield from self._candidate_names(arg.orelse)
        # Plain variables are wrapper plumbing: skipped by design.

    def _check_name(self, module, node: ast.Call,
                    name: str) -> Iterable[Finding]:
        if not name or self.known(name):
            return
        rule = "MET002" if "*" in name else "MET001"
        yield Finding(
            rule=rule, path=module.rel_path, line=node.lineno,
            message=f"metric name {name!r} is not in the metric registry",
            hint="fix the typo, or register the new name via "
                 "scripts/generate_metric_registry.py --update")
