"""Determinism: no wall clocks, no unseeded randomness, no stream sharing.

Bit-identical replays are the foundation every equivalence harness in this
repo stands on (batch==sequential, mux==polling, armor-off==raw, ...).
They hold only if simulation code draws *all* nondeterminism from two
places: the simulated clock (``sim.engine``) and the named seeded streams
of ``sim/rng.py``.  Three rules police that:

``DET001``
    Wall-clock and real-sleep calls (``time.time``, ``time.perf_counter``,
    ``time.monotonic``, ``time.sleep``, ``datetime.now`` and friends,
    ``os.urandom``, ``uuid.uuid1``/``uuid4``, any ``secrets.*``) anywhere
    under the linted roots.  Benchmark timing that *deliberately* measures
    wall clock carries a justified inline suppression.

``DET002``
    Unseeded module-level randomness: any ``random.*`` call except
    ``random.Random(seed)`` construction with an explicit seed.  Seeded
    instances (and the ``sim/rng.py`` streams built from them) are the
    only sanctioned source; the module-level global stream is shared
    mutable state whose draw order depends on import order.

``DET003``
    ``Network.transfer(...)`` calls inside ``repro.replication`` /
    ``repro.cdc`` that omit the dedicated ``stream=`` kwarg.  Replication
    and CDC traffic must draw latency/loss samples from their own named
    stream: sharing the network-wide pair means a shipping-mode change
    perturbs *operation-path* RNG draws and every seeded experiment
    shifts.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.checkers.base import Checker
from repro.analysis.findings import Finding

#: Fully qualified call targets that read wall clock / real entropy.
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.sleep",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
}

#: Whole modules whose every call is wall-entropy.
ENTROPY_MODULES = ("secrets",)

#: Packages whose ``Network.transfer`` calls must name a stream.
STREAM_REQUIRED_PACKAGES = {"replication", "cdc"}


class DeterminismChecker(Checker):

    RULES = {
        "DET001": "wall-clock or real-entropy call (time/datetime/"
                  "os.urandom/uuid/secrets) -- use the sim clock",
        "DET002": "unseeded module-level random.* call -- draw from a "
                  "named sim/rng.py stream",
        "DET003": "Network.transfer in a replication/CDC path without the "
                  "dedicated stream= kwarg",
    }

    def check(self, module) -> Iterable[Finding]:
        findings: List[Finding] = []
        stream_scope = module.package in STREAM_REQUIRED_PACKAGES
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.imports.resolve_call_target(node.func)
            if target:
                findings.extend(self._check_target(module, node, target))
            if stream_scope:
                findings.extend(self._check_transfer(module, node))
        return findings

    def _check_target(self, module, node: ast.Call,
                      target: str) -> Iterable[Finding]:
        if target in WALL_CLOCK_CALLS or \
                target.split(".")[0] in ENTROPY_MODULES:
            yield Finding(
                rule="DET001", path=module.rel_path, line=node.lineno,
                message=f"call to {target} reads wall clock or real "
                        f"entropy",
                hint="use the sim clock (sim.now / sim.timeout) or a "
                     "seeded sim/rng.py stream")
        elif target.startswith("random."):
            yield from self._check_random(module, node, target)

    def _check_random(self, module, node: ast.Call,
                      target: str) -> Iterable[Finding]:
        attr = target[len("random."):]
        if attr == "Random":
            if node.args or node.keywords:
                return  # seeded instance construction: the sanctioned way
            yield Finding(
                rule="DET002", path=module.rel_path, line=node.lineno,
                message="random.Random() without a seed is entropy-seeded",
                hint="pass derive_seed(root_seed, stream) from sim/rng.py")
            return
        if "." in attr:
            return  # method on some random.X object we cannot resolve
        yield Finding(
            rule="DET002", path=module.rel_path, line=node.lineno,
            message=f"module-level random.{attr} draws from the shared "
                    f"unseeded global stream",
            hint="draw from a named RandomStreams stream "
                 "(sim/rng.py) instead")

    def _check_transfer(self, module, node: ast.Call) -> Iterable[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "transfer"):
            return
        has_stream = any(keyword.arg == "stream" or keyword.arg is None
                         for keyword in node.keywords)
        if has_stream:
            return
        yield Finding(
            rule="DET003", path=module.rel_path, line=node.lineno,
            message="Network.transfer on a replication/CDC path without "
                    "stream= shares the operation-path RNG pair",
            hint='pass stream="replication" (or a dedicated stream name) '
                 'so shipping changes cannot perturb operation draws')
