"""Structured lint findings and inline suppressions.

A :class:`Finding` is one rule violation at one source location.  Findings
sort by ``(path, line, rule)`` so reports and baselines are stable across
runs, and :meth:`Finding.baseline_key` is the identity used by the
``--baseline`` burn-down file (message text deliberately excluded, so a
reworded message does not resurrect a baselined finding).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: ``# reprolint: disable=RULE1,RULE2 -- justification`` anywhere on a line.
SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(?:\s*--\s*(?P<why>\S.*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            #: rule id, e.g. ``DET001``
    path: str            #: repo-relative posix path
    line: int            #: 1-based line number
    message: str         #: what is wrong
    hint: str = ""       #: how to fix it

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def baseline_key(self) -> str:
        """Identity of this finding in a baseline file."""
        return f"{self.path}|{self.rule}|{self.line}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


@dataclass(frozen=True)
class Suppression:
    """One inline ``# reprolint: disable=...`` comment.

    A trailing comment suppresses findings on its own line; a comment
    standing alone on a line suppresses findings on the next line.
    Suppressions are first-class report output: the engine counts them and
    flags unjustified ones (no `` -- why`` trailer), so the escape hatch is
    visible in every lint run instead of rotting silently in the tree.
    """

    path: str
    line: int             #: line the comment sits on
    applies_to: int       #: line whose findings it suppresses
    rules: Tuple[str, ...]
    justification: str = ""

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())

    def render(self) -> str:
        status = "justified" if self.justified else "UNJUSTIFIED"
        return (f"{self.path}:{self.line}: suppresses "
                f"{','.join(self.rules)} [{status}]")


def parse_suppressions(path: str, lines: List[str]) -> List[Suppression]:
    """Extract every inline suppression comment from a file's lines."""
    found: List[Suppression] = []
    for number, line in enumerate(lines, start=1):
        match = SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = tuple(rule.strip() for rule in match.group(1).split(","))
        standalone = not line[:match.start()].strip()
        found.append(Suppression(
            path=path, line=number,
            applies_to=number + 1 if standalone else number,
            rules=rules, justification=match.group("why") or ""))
    return found
