"""Alias-aware import resolution for AST checkers.

The grep this framework replaces missed ``from repro.api import session as
s`` and ``import time as t`` -- any aliased import defeated it.  The
:class:`ImportTable` walks a module's ``import``/``from ... import``
statements (resolving relative imports against the module's own dotted
name) and maps every locally bound name to the fully qualified dotted path
it came from, so checkers reason about *origins*, not surface spellings.

Two views are kept because they genuinely differ:

* **bindings** -- ``import repro.api`` binds the name ``repro``; alias
  resolution of call targets must follow the bound name.
* **dependencies** -- the same statement *executes* ``repro.api``; the
  layering checker must see the full dotted module, not the binding.

Imports guarded by ``if TYPE_CHECKING:`` are recorded but marked
type-only: they never execute, so the layering checker exempts them while
determinism checkers (which look at call sites, not imports) are
unaffected.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class ImportRecord:
    """One imported origin: the bound local name and the dotted source."""

    local: str       #: name bound in this module (after ``as`` renaming)
    origin: str      #: dotted origin the binding resolves to
    module: str      #: dotted module whose execution this import triggers
    line: int
    type_only: bool  #: bound under ``if TYPE_CHECKING:``


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class ImportTable:
    """Every import in one module, with aliases resolved to origins."""

    def __init__(self, tree: ast.AST, module_name: Optional[str] = None):
        self.module_name = module_name
        self.bindings: Dict[str, ImportRecord] = {}
        self.records: List[ImportRecord] = []
        self._collect(tree, type_only=False)

    # -- construction ------------------------------------------------------

    def _collect(self, node: ast.AST, type_only: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.asname:
                        local, origin = alias.asname, alias.name
                    else:
                        # ``import a.b`` binds ``a`` -- but executes a.b.
                        local = origin = alias.name.split(".")[0]
                    self._record(local, origin, alias.name, child.lineno,
                                 type_only)
            elif isinstance(child, ast.ImportFrom):
                base = self._resolve_from_base(child)
                for alias in child.names:
                    if alias.name == "*":
                        self._record("*", base, base, child.lineno,
                                     type_only)
                        continue
                    local = alias.asname or alias.name
                    origin = f"{base}.{alias.name}" if base else alias.name
                    self._record(local, origin, base or origin,
                                 child.lineno, type_only)
            elif isinstance(child, ast.If) and \
                    _is_type_checking_test(child.test):
                for stmt in child.body:
                    self._collect(_statement_module(stmt), type_only=True)
                for stmt in child.orelse:
                    self._collect(_statement_module(stmt), type_only)
            else:
                self._collect(child, type_only)

    def _resolve_from_base(self, node: ast.ImportFrom) -> str:
        """The absolute dotted base of a ``from X import ...`` statement."""
        if not node.level:
            return node.module or ""
        # Relative import: resolve against this module's dotted name.  The
        # linted file is never a package ``__init__`` under its own name
        # (those are parsed as ``pkg.__init__``), so one trailing component
        # is the module itself and each extra level strips one more.
        if not self.module_name:
            return node.module or ""
        # Drop the module's own (or literal ``__init__``) final component:
        # level 1 then addresses the containing package directly.
        parts = self.module_name.split(".")[:-1]
        extra = node.level - 1
        if extra:
            parts = parts[:len(parts) - extra]
        if node.module:
            parts = parts + [node.module]
        return ".".join(parts)

    def _record(self, local: str, origin: str, module: str, line: int,
                type_only: bool) -> None:
        entry = ImportRecord(local=local, origin=origin, module=module,
                             line=line, type_only=type_only)
        self.records.append(entry)
        if local != "*":
            self.bindings[local] = entry

    # -- queries -----------------------------------------------------------

    def origin_of(self, local: str) -> Optional[str]:
        entry = self.bindings.get(local)
        return entry.origin if entry else None

    def resolve_call_target(self, func: ast.expr) -> Optional[str]:
        """The dotted origin a call target resolves to, alias-aware.

        ``pc()`` after ``from time import perf_counter as pc`` resolves to
        ``time.perf_counter``; ``t.sleep`` after ``import time as t``
        resolves to ``time.sleep``.  Unresolvable targets (locals, computed
        attributes) return ``None``.
        """
        chain = attribute_chain(func)
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        origin = self.origin_of(head)
        if origin is None:
            return None
        return ".".join([origin, *rest])

    def repro_dependencies(self) -> List[ImportRecord]:
        """Every import record whose executed module lives under repro."""
        return [entry for entry in self.records
                if entry.module == "repro" or
                entry.module.startswith("repro.")]


def _statement_module(stmt: ast.stmt) -> ast.Module:
    return ast.Module(body=[stmt], type_ignores=[])


def attribute_chain(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for computed receivers."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts
