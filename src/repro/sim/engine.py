"""The simulation engine: virtual clock plus event queue.

The engine processes events in ``(time, priority, sequence)`` order, so
results are fully deterministic for a given seed and program.  Processes are
created with :meth:`Simulation.process` and advance by yielding events.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.rng import RandomStreams

#: Priority used for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for urgent bookkeeping events (process bootstrap etc.).
PRIORITY_URGENT = 0


class Simulation:
    """A discrete-event simulation with a virtual clock.

    Parameters
    ----------
    seed:
        Root seed for all random streams obtained through :meth:`rng`.
        Two simulations built with the same seed and the same program
        produce identical traces.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: list = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        #: Scheduled-but-cancelled entries still sitting in the heap; when
        #: they dominate, :meth:`_prune_cancelled` compacts the heap in one
        #: pass instead of waiting for each to reach the top.
        self._cancelled_scheduled = 0
        self.streams = RandomStreams(seed)
        self.seed = seed

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        self._prune_cancelled()
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    # -- randomness ----------------------------------------------------------

    def rng(self, stream: str):
        """Return the named deterministic random stream.

        Separate components should use separate stream names so adding a new
        consumer of randomness does not perturb unrelated results.
        """
        return self.streams.get(stream)

    # -- event creation -------------------------------------------------------

    def event(self, name: Optional[str] = None) -> Event:
        """Create a plain event that some component will trigger later."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` virtual seconds."""
        return Timeout(self, delay, value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that triggers when the first of ``events`` does."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event))

    # -- execution -----------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for scheduled, unprocessed events."""
        self._cancelled_scheduled += 1

    def _prune_cancelled(self) -> None:
        """Drop cancelled entries from the heap (lazy deletion + compaction).

        Cancellation (:meth:`~repro.sim.events.Event.cancel`) only marks the
        event; the queue entry is discarded here -- from the top the moment
        it would otherwise be the next to run, or in one compaction pass
        when cancelled entries have come to outnumber live ones (so a
        workload that cancels at a sustained rate keeps a bounded heap
        instead of carrying every dead entry to its original fire time).
        A cancelled event never advances the clock and never runs
        callbacks.
        """
        queue = self._queue
        if self._cancelled_scheduled > 32 and \
                self._cancelled_scheduled * 2 > len(queue):
            self._queue = [entry for entry in queue
                           if not entry[3].cancelled]
            heapq.heapify(self._queue)
            self._cancelled_scheduled = 0
            return
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
            if self._cancelled_scheduled > 0:
                self._cancelled_scheduled -= 1

    def step(self) -> None:
        """Process the single next (non-cancelled) event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        self._prune_cancelled()
        when, _priority, _seq, event = heapq.heappop(self._queue)
        self._now = when
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue empties or the clock would pass ``until``.

        Returns the simulation time when the run stopped.  When ``until`` is
        given the clock is advanced exactly to it even if no event falls on
        that instant, which makes back-to-back ``run(until=...)`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"cannot run to {until}: simulation time is already {self._now}")
        while self._queue:
            self._prune_cancelled()
            if not self._queue:
                break
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_for(self, duration: float) -> float:
        """Run for ``duration`` more virtual seconds (convenience wrapper)."""
        return self.run(until=self._now + duration)

    def run_until_triggered(self, event: Event,
                            limit: Optional[float] = None) -> float:
        """Run only until ``event`` triggers (or ``limit`` is reached).

        Unlike :meth:`run`, this stops as soon as the awaited event has
        fired, leaving unrelated background events (replication ticks,
        periodic checkpoints...) in the queue.  Drivers that issue many
        individual operations against a long-lived deployment use this to
        avoid simulating the idle time after each operation.
        """
        deadline = float("inf") if limit is None else limit
        if deadline < self._now:
            raise ValueError(
                f"cannot run to {limit}: simulation time is already {self._now}")
        while not event.triggered and self._queue:
            self._prune_cancelled()
            if not self._queue or self._queue[0][0] > deadline:
                break
            self.step()
        return self._now

    def __repr__(self) -> str:
        return (f"<Simulation now={self._now:.6f}s "
                f"pending={len(self._queue)} seed={self.seed}>")
