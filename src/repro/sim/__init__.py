"""Discrete-event simulation kernel.

The kernel is a small, dependency-free cousin of SimPy: a virtual clock, a
priority event queue and coroutine-style processes written as generators that
``yield`` events (timeouts, other processes, custom events).  All higher
layers of the reproduction (network, storage elements, replication,
front-ends, provisioning) are built as processes on top of this kernel, so
experiments run in virtual time and are reproducible from a seed.

Typical usage::

    from repro.sim import Simulation

    sim = Simulation(seed=7)

    def worker(sim, results):
        yield sim.timeout(1.5)
        results.append(sim.now)

    results = []
    sim.process(worker(sim, results))
    sim.run()
    assert results == [1.5]
"""

from repro.sim.engine import Simulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    EventStatus,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.rng import RandomStreams
from repro.sim import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventStatus",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Simulation",
    "SimulationError",
    "Timeout",
    "units",
]
