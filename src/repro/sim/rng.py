"""Deterministic named random streams.

All stochastic behaviour in the reproduction (network latency samples,
workload arrivals, failure times, subscriber generation) draws from named
streams derived from a single root seed.  Using independent named streams
means that adding a new consumer of randomness (say, a new fault type) does
not shift the samples seen by unrelated components, which keeps experiment
results comparable across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    The derivation uses SHA-256 rather than Python's ``hash`` so it is stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    material = f"{root_seed}:{stream}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of named :class:`random.Random` instances under one seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, stream: str) -> random.Random:
        """Return (creating if needed) the stream with the given name."""
        if stream not in self._streams:
            self._streams[stream] = random.Random(
                derive_seed(self.root_seed, stream))
        return self._streams[stream]

    def fork(self, stream: str) -> "RandomStreams":
        """Return a new stream family seeded from a named child stream.

        Useful when a sub-component wants its own namespace of streams, e.g.
        one family per simulated site.
        """
        return RandomStreams(derive_seed(self.root_seed, stream))

    def __contains__(self, stream: str) -> bool:
        return stream in self._streams

    def __repr__(self) -> str:
        return (f"<RandomStreams root_seed={self.root_seed} "
                f"streams={sorted(self._streams)}>")
