"""Time and size units used throughout the simulation.

Virtual time is measured in **seconds** (floats).  These constants make the
intent of durations explicit at call sites, e.g. ``sim.timeout(5 * MINUTE)``
or a checkpoint period of ``15 * MINUTE``.

Data sizes are measured in **bytes**; the paper reasons in gigabytes of RAM
per storage element, hence the binary-prefix constants.
"""

# --- time -----------------------------------------------------------------

MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3_600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
YEAR = 365 * DAY

# --- data sizes ------------------------------------------------------------

BYTE = 1
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# --- convenience -----------------------------------------------------------


def milliseconds(value: float) -> float:
    """Convert a value expressed in milliseconds to simulation seconds."""
    return value * MILLISECOND


def to_milliseconds(seconds: float) -> float:
    """Convert simulation seconds to milliseconds (for reporting)."""
    return seconds / MILLISECOND


def availability_from_downtime(downtime: float, period: float = YEAR) -> float:
    """Return availability as a fraction given total downtime over a period.

    ``availability_from_downtime(5 * MINUTE + 15 * SECOND)`` is roughly
    0.99999, the "five nines" the paper requires of subscriber data.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    downtime = min(max(downtime, 0.0), period)
    return 1.0 - downtime / period


def downtime_budget(availability: float, period: float = YEAR) -> float:
    """Return the downtime budget for an availability target over a period.

    The paper's 99.999% target over one year allows about 315 seconds of
    per-subscriber unavailability.
    """
    if not 0.0 <= availability <= 1.0:
        raise ValueError("availability must be within [0, 1]")
    return (1.0 - availability) * period


FIVE_NINES = 0.99999
"""The paper's resilience requirement: data available 99.999% of the time."""

TEN_MILLISECONDS = 10 * MILLISECOND
"""The paper's target average response time for index-based single queries."""
