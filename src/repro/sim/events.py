"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence that other processes can wait on.
Events move through the states *pending* -> *triggered* -> *processed*: a
triggered event has a value (or an exception) and sits in the simulation
queue; a processed event has had its callbacks run.

:class:`Process` wraps a generator.  The generator advances by yielding
events; when a yielded event is processed the generator is resumed with the
event's value (or the event's exception is thrown into it).  A process is
itself an event that triggers when its generator finishes, which is what makes
``yield sim.process(...)`` composition work.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double triggering, bad yields...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    The ``cause`` attribute carries whatever object the interrupter supplied,
    typically a short reason string or a fault descriptor.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class EventStatus(enum.Enum):
    """Lifecycle states of an :class:`Event`."""

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`repro.sim.engine.Simulation`.
    name:
        Optional label used in ``repr`` and error messages.
    """

    def __init__(self, sim, name: Optional[str] = None):
        self.sim = sim
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._status = EventStatus.PENDING
        self.defused = False
        self.cancelled = False

    # -- state inspection ---------------------------------------------------

    @property
    def status(self) -> EventStatus:
        return self._status

    @property
    def triggered(self) -> bool:
        return self._status is not EventStatus.PENDING

    @property
    def processed(self) -> bool:
        return self._status is EventStatus.PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value=value)
        return self

    def cancel(self) -> "Event":
        """Withdraw a scheduled event before it is processed.

        A cancelled event never runs its callbacks: the engine discards its
        queue entry lazily (at the heap top, or in a bulk compaction when
        cancelled entries come to dominate the heap), so cancellation is
        O(1) and sustained cancellation cannot grow the heap.  The main
        customer is the dispatcher's linger-deadline :class:`Timeout`,
        which becomes stale whenever a wave fills before its deadline
        fires.  Cancelling an already-processed event is a no-op.
        """
        if not self.cancelled and self.triggered and not self.processed:
            self.sim._note_cancelled()
        self.cancelled = True
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have the exception thrown into
        them.  If nothing ever waits on a failed event the simulation raises
        the exception at processing time, so failures never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(exception=exception)
        return self

    def _trigger(self, value: Any = None,
                 exception: Optional[BaseException] = None) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self._exception = exception
        self._status = EventStatus.TRIGGERED
        self.sim._schedule(self, delay=0.0)

    # -- callbacks ----------------------------------------------------------

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        Registering on an already-processed event runs the callback
        immediately, which lets late joiners observe past events without
        racing the scheduler.
        """
        if self.processed:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        """Run callbacks; called by the simulation engine."""
        self._status = EventStatus.PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if self._exception is not None and not callbacks and not self.defused:
            # Nobody was listening to a failure: surface it instead of
            # letting it vanish.
            raise self._exception

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        return f"<{label} status={self._status.value}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    def __init__(self, sim, delay: float, value: Any = None,
                 name: Optional[str] = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim, name=name or f"Timeout({delay})")
        self.delay = delay
        self._value = value
        self._status = EventStatus.TRIGGERED
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator yields :class:`Event` instances.  Yielding anything else is
    a programming error and fails the process immediately.  The process
    succeeds with the generator's return value, or fails with the exception
    that escaped the generator.
    """

    def __init__(self, sim, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                "Process requires a generator; got "
                f"{type(generator).__name__}. Did you forget to call the "
                "generator function?")
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator as soon as the simulation runs.
        bootstrap = Event(sim, name=f"init:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current wait.

        Interrupting a finished process is a no-op, mirroring SimPy, so fault
        injectors do not need to check liveness first.
        """
        if not self.is_alive:
            return
        target = self._waiting_on
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_event.defused = True
        interrupt_event._value = None
        interrupt_event._exception = Interrupt(cause)
        interrupt_event._status = EventStatus.TRIGGERED
        interrupt_event.add_callback(self._resume)
        self.sim._schedule(interrupt_event, delay=0.0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event.exception is not None:
                event.defused = True
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - the process failed
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, which is not an "
                "Event")
            self.fail(error)
            return
        if target.sim is not self.sim:
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from a different "
                "simulation"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for composite events built from several child events."""

    def __init__(self, sim, events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self._events = list(events)
        self._pending = 0
        for child in self._events:
            if not isinstance(child, Event):
                raise SimulationError(
                    f"{name} requires Event instances, got {child!r}")
        if not self._events:
            self.succeed([])
            return
        # Count *before* registering: add_callback on an already-processed
        # child runs the callback immediately, and with an incremental count
        # the first processed child would drive _pending to zero and trigger
        # an AllOf prematurely while later children are still pending.
        self._pending = len(self._events)
        for child in self._events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError

    def _collect_values(self) -> list:
        return [child._value for child in self._events if child.ok]


class AllOf(_Condition):
    """Triggers when *all* child events have triggered.

    Succeeds with the list of child values (in the original order).  Fails as
    soon as any child fails.
    """

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        exc = child.exception
        if exc is not None:
            child.defused = True
            self.fail(exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c._value for c in self._events])


class AnyOf(_Condition):
    """Triggers when the *first* child event triggers.

    Succeeds with a ``(event, value)`` tuple identifying the winner; fails if
    that first event failed.
    """

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        exc = child.exception
        if exc is not None:
            child.defused = True
            self.fail(exc)
            return
        self.succeed((child, child._value))
