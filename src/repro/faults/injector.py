"""The fault injector: applies scheduled and stochastic faults to a deployment.

The injector works against a :class:`~repro.core.udr.UDRNetworkFunction`: it
schedules partition incidents and site disasters at their configured times,
and (optionally) runs a stochastic crash/repair process over the storage
elements.  Everything is driven through simulation processes so faults
interleave naturally with traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.corruption import (
    CorruptionReport,
    SilentCorruption,
    apply_corruption,
)
from repro.faults.failures import (
    ElementFailureProcess,
    PartitionIncident,
    SiteDisaster,
)


@dataclass
class FaultSchedule:
    """A declarative list of incidents to apply."""

    partitions: List[PartitionIncident] = field(default_factory=list)
    disasters: List[SiteDisaster] = field(default_factory=list)
    corruptions: List[SilentCorruption] = field(default_factory=list)

    def add_partition(self, incident: PartitionIncident) -> "FaultSchedule":
        self.partitions.append(incident)
        return self

    def add_disaster(self, disaster: SiteDisaster) -> "FaultSchedule":
        self.disasters.append(disaster)
        return self

    def add_corruption(self, corruption: SilentCorruption) -> "FaultSchedule":
        self.corruptions.append(corruption)
        return self

    @property
    def empty(self) -> bool:
        return not self.partitions and not self.disasters and \
            not self.corruptions


class FaultInjector:
    """Applies a :class:`FaultSchedule` (and optional random crashes) to a UDR."""

    def __init__(self, udr, schedule: Optional[FaultSchedule] = None):
        self.udr = udr
        self.schedule = schedule or FaultSchedule()
        self.partitions_applied = 0
        self.disasters_applied = 0
        self.element_crashes = 0
        self.corruptions_applied = 0
        #: One report per scheduled corruption, in injection order --
        #: experiments read ``applied_at`` off these to measure how long
        #: the reconciler took to notice.
        self.corruption_reports: List[CorruptionReport] = []

    # -- scheduled incidents -------------------------------------------------------

    def start(self) -> None:
        """Schedule every incident of the fault schedule as a process."""
        for incident in self.schedule.partitions:
            self.udr.sim.process(self._run_partition(incident),
                                 name=f"fault:partition@{incident.start}")
        for disaster in self.schedule.disasters:
            self.udr.sim.process(self._run_disaster(disaster),
                                 name=f"fault:disaster:{disaster.site_name}")
        for corruption in self.schedule.corruptions:
            self.udr.sim.process(
                self._run_corruption(corruption),
                name=f"fault:corruption:{corruption.kind}"
                     f"@{corruption.site_name}")

    def _run_partition(self, incident: PartitionIncident):
        sim = self.udr.sim
        if incident.start > sim.now:
            yield sim.timeout(incident.start - sim.now)
        self.udr.network.apply_partition(incident.partition)
        self.partitions_applied += 1
        yield sim.timeout(incident.duration)
        self.udr.network.heal_partition(incident.partition)

    def _run_disaster(self, disaster: SiteDisaster):
        sim = self.udr.sim
        if disaster.start > sim.now:
            yield sim.timeout(disaster.start - sim.now)
        site = self.udr.topology.site(disaster.site_name)
        self.udr.network.fail_site(site)
        for poa in self.udr.points_of_access:
            if poa.site == site:
                poa.fail()
        affected_elements = [name for name, element in self.udr.elements.items()
                             if element.site == site]
        for name in affected_elements:
            self.udr.crash_element(name, auto_repair=False)
        self.disasters_applied += 1
        yield sim.timeout(disaster.duration)
        self.udr.network.restore_site(site)
        for poa in self.udr.points_of_access:
            if poa.site == site:
                poa.restore()
        for name in affected_elements:
            self.udr.recover_element(name)

    # -- silent corruption ---------------------------------------------------------

    def _run_corruption(self, corruption: SilentCorruption,
                        max_attempts: int = 200):
        """Apply one silent corruption at its scheduled time.

        ``skip_apply`` needs an open shipment window (committed records
        not yet applied on the slave); under live traffic one opens
        within a replication interval or two, so the process retries on
        that grid until it lands -- bounded so an idle deployment cannot
        leak a spinning process.
        """
        sim = self.udr.sim
        if corruption.at > sim.now:
            yield sim.timeout(corruption.at - sim.now)
        rng = sim.rng("faults.corruption")
        report = apply_corruption(self.udr, corruption, rng)
        attempts = 1
        while not report.applied and corruption.kind == "skip_apply" and \
                attempts < max_attempts:
            yield sim.timeout(self.udr.config.replication_interval)
            report = apply_corruption(self.udr, corruption, rng)
            attempts += 1
        if report.applied:
            self.corruptions_applied += 1
        self.corruption_reports.append(report)

    # -- stochastic element failures ----------------------------------------------------

    def run_element_failures(self, process: ElementFailureProcess,
                             horizon: float, element_names=None,
                             fail_over: bool = True) -> int:
        """Schedule stochastic crashes for elements up to ``horizon``.

        Returns the number of crash events scheduled.  Each crash triggers
        the SAF manager (repair after the process' MTTR); when ``fail_over``
        is set the partitions mastered on the crashed element are failed over
        to a surviving copy immediately, as the real system would.
        """
        rng = self.udr.sim.rng("faults.element-failures")
        names = list(element_names or self.udr.elements)
        scheduled = 0
        for name in names:
            for crash_time in process.draw_failure_times(rng, horizon):
                self.udr.sim.process(
                    self._crash_later(name, crash_time, process.mttr,
                                      fail_over),
                    name=f"fault:crash:{name}@{crash_time:.0f}")
                scheduled += 1
        return scheduled

    def _crash_later(self, element_name: str, crash_time: float,
                     mttr: float, fail_over: bool):
        sim = self.udr.sim
        if crash_time > sim.now:
            yield sim.timeout(crash_time - sim.now)
        element = self.udr.elements[element_name]
        if not element.available:
            return
        component = self.udr.availability_manager.component(element_name)
        component.repair_time = mttr
        self.udr.availability_manager.fail_component(element_name,
                                                     auto_repair=True)
        self.element_crashes += 1
        if fail_over:
            self.udr.fail_over(element_name)

    def __repr__(self) -> str:
        return (f"<FaultInjector partitions={self.partitions_applied} "
                f"disasters={self.disasters_applied} "
                f"crashes={self.element_crashes} "
                f"corruptions={self.corruptions_applied}>")
