"""The fault injector: applies scheduled and stochastic faults to a deployment.

The injector works against a :class:`~repro.core.udr.UDRNetworkFunction`: it
schedules partition incidents and site disasters at their configured times,
and (optionally) runs a stochastic crash/repair process over the storage
elements.  Everything is driven through simulation processes so faults
interleave naturally with traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.corruption import (
    CorruptionReport,
    SilentCorruption,
    apply_corruption,
)
from repro.faults.failures import (
    ElementFailureProcess,
    PartitionIncident,
    SiteDisaster,
)


@dataclass
class FaultSchedule:
    """A declarative list of incidents to apply."""

    partitions: List[PartitionIncident] = field(default_factory=list)
    disasters: List[SiteDisaster] = field(default_factory=list)
    corruptions: List[SilentCorruption] = field(default_factory=list)

    def add_partition(self, incident: PartitionIncident) -> "FaultSchedule":
        self.partitions.append(incident)
        return self

    def add_disaster(self, disaster: SiteDisaster) -> "FaultSchedule":
        self.disasters.append(disaster)
        return self

    def add_corruption(self, corruption: SilentCorruption) -> "FaultSchedule":
        self.corruptions.append(corruption)
        return self

    @property
    def empty(self) -> bool:
        return not self.partitions and not self.disasters and \
            not self.corruptions

    def validate(self) -> "FaultSchedule":
        """Reject schedules with overlapping incidents on the same target.

        Two disasters on one site, or two partition incidents sharing an
        affected site, with intersecting ``[start, end)`` windows compose
        ambiguously (which heal wins?), and two identical corruptions are
        a double-injection -- all three are almost certainly authoring
        mistakes, so the injector refuses to start them.  Cross-category
        overlap (a partition during a disaster) stays legal: compound
        faults are exactly what chaos campaigns are for.
        """
        def overlapping(a_start, a_end, b_start, b_end) -> bool:
            return a_start < b_end and b_start < a_end

        by_site: dict = {}
        for disaster in self.disasters:
            for other in by_site.get(disaster.site_name, []):
                if overlapping(disaster.start, disaster.end,
                               other.start, other.end):
                    raise ValueError(
                        f"overlapping disasters on site "
                        f"{disaster.site_name!r}: [{other.start}, "
                        f"{other.end}) and [{disaster.start}, "
                        f"{disaster.end})")
            by_site.setdefault(disaster.site_name, []).append(disaster)
        for index, first in enumerate(self.partitions):
            for second in self.partitions[index + 1:]:
                if not overlapping(first.start, first.end,
                                   second.start, second.end):
                    continue
                shared = first.partition.affected_sites() & \
                    second.partition.affected_sites()
                if shared:
                    names = sorted(site.name for site in shared)
                    raise ValueError(
                        f"overlapping partition incidents share "
                        f"site(s) {names}")
        seen = set()
        for corruption in self.corruptions:
            key = (corruption.site_name, corruption.kind, corruption.at,
                   getattr(corruption, "target_key", None))
            if key in seen:
                raise ValueError(
                    f"duplicate corruption {corruption.kind!r} at "
                    f"t={corruption.at} on site {corruption.site_name!r}")
            seen.add(key)
        return self


class FaultInjector:
    """Applies a :class:`FaultSchedule` (and optional random crashes) to a UDR."""

    def __init__(self, udr, schedule: Optional[FaultSchedule] = None):
        self.udr = udr
        self.schedule = schedule or FaultSchedule()
        self.partitions_applied = 0
        self.disasters_applied = 0
        self.element_crashes = 0
        self.corruptions_applied = 0
        #: One report per scheduled corruption, in injection order --
        #: experiments read ``applied_at`` off these to measure how long
        #: the reconciler took to notice.
        self.corruption_reports: List[CorruptionReport] = []

    # -- scheduled incidents -------------------------------------------------------

    def start(self) -> None:
        """Schedule every incident of the fault schedule as a process.

        The schedule is validated first (:meth:`FaultSchedule.validate`),
        then spawned in a deterministic order: ascending start time, and
        within one tick a *seeded* shuffle (its own rng stream, so the
        draw count never perturbs traffic randomness).  Same-tick faults
        therefore fire in the same order on every run of a seed, while
        different seeds still explore different interleavings -- which is
        what makes chaos campaigns replayable.
        """
        self.schedule.validate()
        incidents = []
        for incident in self.schedule.partitions:
            incidents.append((
                incident.start, 0, incident.partition.name,
                self._run_partition(incident),
                f"fault:partition@{incident.start}"))
        for disaster in self.schedule.disasters:
            incidents.append((
                disaster.start, 1, disaster.site_name,
                self._run_disaster(disaster),
                f"fault:disaster:{disaster.site_name}"))
        for corruption in self.schedule.corruptions:
            incidents.append((
                corruption.at, 2, f"{corruption.kind}@{corruption.site_name}",
                self._run_corruption(corruption),
                f"fault:corruption:{corruption.kind}"
                f"@{corruption.site_name}"))
        incidents.sort(key=lambda item: (item[0], item[1], item[2]))
        rng = self.udr.sim.rng("faults.schedule-order")
        start = 0
        while start < len(incidents):
            end = start
            while end < len(incidents) and \
                    incidents[end][0] == incidents[start][0]:
                end += 1
            if end - start > 1:
                group = incidents[start:end]
                rng.shuffle(group)
                incidents[start:end] = group
            start = end
        for _, _, _, generator, name in incidents:
            self.udr.sim.process(generator, name=name)

    def _run_partition(self, incident: PartitionIncident):
        sim = self.udr.sim
        if incident.start > sim.now:
            yield sim.timeout(incident.start - sim.now)
        self.udr.network.apply_partition(incident.partition)
        self.partitions_applied += 1
        yield sim.timeout(incident.duration)
        self.udr.network.heal_partition(incident.partition)

    def _run_disaster(self, disaster: SiteDisaster):
        sim = self.udr.sim
        if disaster.start > sim.now:
            yield sim.timeout(disaster.start - sim.now)
        site = self.udr.topology.site(disaster.site_name)
        self.udr.network.fail_site(site)
        for poa in self.udr.points_of_access:
            if poa.site == site:
                poa.fail()
        affected_elements = [name for name, element in self.udr.elements.items()
                             if element.site == site]
        for name in affected_elements:
            self.udr.crash_element(name, auto_repair=False)
        self.disasters_applied += 1
        yield sim.timeout(disaster.duration)
        self.udr.network.restore_site(site)
        for poa in self.udr.points_of_access:
            if poa.site == site:
                poa.restore()
        for name in affected_elements:
            self.udr.recover_element(name)

    # -- silent corruption ---------------------------------------------------------

    def _run_corruption(self, corruption: SilentCorruption,
                        max_attempts: int = 200):
        """Apply one silent corruption at its scheduled time.

        ``skip_apply`` needs an open shipment window (committed records
        not yet applied on the slave); under live traffic one opens
        within a replication interval or two, so the process retries on
        that grid until it lands -- bounded so an idle deployment cannot
        leak a spinning process.
        """
        sim = self.udr.sim
        if corruption.at > sim.now:
            yield sim.timeout(corruption.at - sim.now)
        rng = sim.rng("faults.corruption")
        report = apply_corruption(self.udr, corruption, rng)
        attempts = 1
        while not report.applied and corruption.kind == "skip_apply" and \
                attempts < max_attempts:
            yield sim.timeout(self.udr.config.replication_interval)
            report = apply_corruption(self.udr, corruption, rng)
            attempts += 1
        if report.applied:
            self.corruptions_applied += 1
        self.corruption_reports.append(report)

    # -- stochastic element failures ----------------------------------------------------

    def run_element_failures(self, process: ElementFailureProcess,
                             horizon: float, element_names=None,
                             fail_over: Optional[bool] = None) -> int:
        """Schedule stochastic crashes for elements up to ``horizon``.

        Returns the number of crash events scheduled.  Each crash triggers
        the SAF manager (repair after the process' MTTR); when ``fail_over``
        is set the partitions mastered on the crashed element are failed over
        to a surviving copy immediately, as the real system would.

        ``fail_over=None`` (the default) is membership-aware: the oracle
        fail-over fires only when the deployment has *no* membership plane
        (``config.membership is None``) -- with the plane running, its
        lease-based detector is the component that notices the crash and
        drives the quorum promotion, so an instant oracle call would dodge
        exactly the machinery under test.  Pass an explicit ``True`` or
        ``False`` to override either way.
        """
        if fail_over is None:
            fail_over = getattr(self.udr, "membership", None) is None
        rng = self.udr.sim.rng("faults.element-failures")
        names = list(element_names or self.udr.elements)
        scheduled = 0
        for name in names:
            for crash_time in process.draw_failure_times(rng, horizon):
                self.udr.sim.process(
                    self._crash_later(name, crash_time, process.mttr,
                                      fail_over),
                    name=f"fault:crash:{name}@{crash_time:.0f}")
                scheduled += 1
        return scheduled

    def _crash_later(self, element_name: str, crash_time: float,
                     mttr: float, fail_over: bool):
        sim = self.udr.sim
        if crash_time > sim.now:
            yield sim.timeout(crash_time - sim.now)
        element = self.udr.elements[element_name]
        if not element.available:
            return
        component = self.udr.availability_manager.component(element_name)
        component.repair_time = mttr
        self.udr.availability_manager.fail_component(element_name,
                                                     auto_repair=True)
        self.element_crashes += 1
        if fail_over:
            self.udr.fail_over(element_name)

    def __repr__(self) -> str:
        return (f"<FaultInjector partitions={self.partitions_applied} "
                f"disasters={self.disasters_applied} "
                f"crashes={self.element_crashes} "
                f"corruptions={self.corruptions_applied}>")
