"""Fault injection: element failures, site disasters and network partitions.

The CAP behaviour the paper analyses only shows up under faults, so the
experiments need a controlled way to produce them: scheduled incidents (a
backbone partition from t=60 s to t=90 s during a batch run), and stochastic
failure processes (storage elements failing with a given MTBF/MTTR) for the
availability experiments.
"""

from repro.faults.failures import (
    ElementFailureProcess,
    PartitionIncident,
    SiteDisaster,
)
from repro.faults.injector import FaultInjector, FaultSchedule

__all__ = [
    "ElementFailureProcess",
    "FaultInjector",
    "FaultSchedule",
    "PartitionIncident",
    "SiteDisaster",
]
