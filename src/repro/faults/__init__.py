"""Fault injection: element failures, site disasters, network partitions
and silent data corruption.

The CAP behaviour the paper analyses only shows up under faults, so the
experiments need a controlled way to produce them: scheduled incidents (a
backbone partition from t=60 s to t=90 s during a batch run), stochastic
failure processes (storage elements failing with a given MTBF/MTTR) for the
availability experiments, and -- for the reconciliation experiments --
:class:`SilentCorruption` incidents that drift replica or locator state
without tripping any health signal.
"""

from repro.faults.chaos import (
    CampaignReport,
    ChaosCampaign,
    InvariantChecker,
    InvariantViolation,
    run_campaigns,
)
from repro.faults.corruption import (
    CorruptionReport,
    SilentCorruption,
    apply_corruption,
    flip_store_record,
)
from repro.faults.failures import (
    ElementFailureProcess,
    PartitionIncident,
    SiteDisaster,
)
from repro.faults.injector import FaultInjector, FaultSchedule

__all__ = [
    "CampaignReport",
    "ChaosCampaign",
    "CorruptionReport",
    "ElementFailureProcess",
    "FaultInjector",
    "FaultSchedule",
    "InvariantChecker",
    "InvariantViolation",
    "PartitionIncident",
    "SilentCorruption",
    "SiteDisaster",
    "apply_corruption",
    "flip_store_record",
    "run_campaigns",
]
