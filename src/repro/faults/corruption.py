"""Silent data corruption: drift the replicas without any failure signal.

The incidents in :mod:`repro.faults.failures` are *loud* -- a crashed
element or a split backbone is visible to the availability manager.  A
:class:`SilentCorruption` is the opposite: it damages replicated state
without tripping any health signal, which is exactly the drift class the
CDC plane's :class:`~repro.cdc.reconcile.Reconciler` exists to catch.
Three kinds cover the master/replica/locator diff corners:

* ``byte_flip`` -- a slave copy's latest version of one record silently
  changes attribute bytes (same ``commit_seq``, wrong value): bit rot,
  a torn page, a bad NIC;
* ``locator_drop`` -- one data-location instance forgets a subscriber's
  identity entries: a lost provisioning update to one PoA's map;
* ``skip_apply`` -- a replication shipment is acknowledged (the shipped
  cursor advances) but never applied on the slave: a lost write on the
  receiving side.

Each kind is applied *surgically* through the same structures the real
paths use (version chains, locator maps, shipped cursors), so the
corruption is indistinguishable from the modelled hardware fault -- no
flag is left behind for the reconciler to cheat with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.storage.records import RecordVersion

#: Attributes naming subscriber identities; flips avoid these so a
#: corrupted record stays resolvable (the realistic -- and harder to
#: notice -- case).
_IDENTITY_ATTRIBUTES: Tuple[str, ...] = ("imsi", "msisdn", "impu", "impi")

KINDS: Tuple[str, ...] = ("byte_flip", "locator_drop", "skip_apply")


@dataclass(frozen=True)
class SilentCorruption:
    """One scheduled silent-corruption incident."""

    site_name: str
    partition_index: int
    kind: str
    at: float = 0.0
    #: Specific record key to damage; ``None`` picks one deterministically
    #: from the supplied random stream.
    target_key: Optional[str] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown corruption kind {self.kind!r} "
                             f"(one of {', '.join(KINDS)})")
        if self.partition_index < 0:
            raise ValueError("partition index cannot be negative")
        if self.at < 0:
            raise ValueError("corruption time cannot be negative")


@dataclass
class CorruptionReport:
    """What one corruption actually did (the e23 latency baseline)."""

    corruption: SilentCorruption
    applied: bool = False
    applied_at: float = 0.0
    element_name: Optional[str] = None
    key: Optional[str] = None
    identities: Dict[str, str] = field(default_factory=dict)
    records_swallowed: int = 0
    detail: str = ""

    def __repr__(self) -> str:
        return (f"<CorruptionReport {self.corruption.kind} "
                f"applied={self.applied} key={self.key!r} "
                f"at={self.applied_at:.3f}>")


def apply_corruption(udr, corruption: SilentCorruption,
                     rng) -> CorruptionReport:
    """Apply one corruption to a live deployment, now.

    ``rng`` picks the victim record when ``target_key`` is unset (seed it
    from the simulation's named streams for reproducibility).  Returns a
    report; ``applied=False`` means no damage was possible (no slave at
    the site, empty store, or -- for ``skip_apply`` -- no unapplied
    shipment window right now; the injector's scheduled process retries
    the latter until traffic opens one).
    """
    report = CorruptionReport(corruption=corruption)
    if corruption.kind == "byte_flip":
        _apply_byte_flip(udr, corruption, rng, report)
    elif corruption.kind == "locator_drop":
        _apply_locator_drop(udr, corruption, rng, report)
    else:
        _apply_skip_apply(udr, corruption, report)
    if report.applied:
        report.applied_at = udr.sim.now
        udr.metrics.increment("faults.corruption.injected")
        udr.metrics.increment(f"faults.corruption.{corruption.kind}")
    return report


# -- kind: byte_flip -------------------------------------------------------------

def _slave_name_at_site(udr, corruption: SilentCorruption) -> Optional[str]:
    replica_set = udr.replica_sets[corruption.partition_index]
    for name in replica_set.slave_names():
        if udr.elements[name].site.name == corruption.site_name:
            return name
    return None


def _pick_key(store, corruption: SilentCorruption, rng) -> Optional[str]:
    if corruption.target_key is not None:
        return corruption.target_key
    keys = sorted(store.keys())
    return rng.choice(keys) if keys else None


def flip_value(value: Any, rng) -> Any:
    """A plausibly-corrupted copy of one record value.

    For attribute maps one non-identity string attribute is scrambled
    (identity attributes are kept intact so the record still resolves);
    scalar values are wrapped.  The result always differs from the input.
    """
    if isinstance(value, Mapping):
        flippable = sorted(
            attribute for attribute, attribute_value in value.items()
            if isinstance(attribute_value, str)
            and attribute not in _IDENTITY_ATTRIBUTES)
        corrupted = dict(value)
        if flippable:
            attribute = rng.choice(flippable)
            original = corrupted[attribute]
            corrupted[attribute] = (original[::-1] + "~") if original \
                else "~"
        else:
            corrupted["_bitrot"] = True
        return corrupted
    return f"~{value!r}~"


def flip_store_record(store, key: str, rng) -> bool:
    """Byte-flip the latest version of ``key`` in ``store``, in place.

    Same version slot, no new chain entry, applied-sequence untouched --
    the way bit rot would do it; the store's RAM accounting follows the
    value it now actually holds.  Returns False when the key has no
    versions.  Usable directly against a bare replica-set copy in tests;
    :func:`apply_corruption` routes ``byte_flip`` through here.
    """
    chain = store._versions.get(key)
    if not chain:
        return False
    latest = chain[-1]
    corrupted = RecordVersion(
        key=latest.key, value=flip_value(latest.value, rng),
        commit_seq=latest.commit_seq,
        transaction_id=latest.transaction_id, origin=latest.origin)
    chain[-1] = corrupted
    store._live_bytes += corrupted.size() - latest.size()
    return True


def _apply_byte_flip(udr, corruption: SilentCorruption, rng,
                     report: CorruptionReport) -> None:
    slave_name = _slave_name_at_site(udr, corruption)
    if slave_name is None:
        report.detail = "no slave copy at site"
        return
    replica_set = udr.replica_sets[corruption.partition_index]
    store = replica_set.copy_on(slave_name).store
    key = _pick_key(store, corruption, rng)
    if key is None:
        report.detail = "slave store is empty"
        return
    if not flip_store_record(store, key, rng):
        report.detail = f"no versions of {key!r}"
        return
    report.applied = True
    report.element_name = slave_name
    report.key = key


# -- kind: locator_drop -----------------------------------------------------------

def _apply_locator_drop(udr, corruption: SilentCorruption, rng,
                        report: CorruptionReport) -> None:
    locator = udr.locators.get(f"cluster-{corruption.site_name}")
    if locator is None:
        report.detail = f"no locator at {corruption.site_name!r}"
        return
    replica_set = udr.replica_sets[corruption.partition_index]
    master_name = replica_set.master_element_name
    if master_name is None:
        report.detail = "partition has no master"
        return
    store = replica_set.copy_on(master_name).store
    key = _pick_key(store, corruption, rng)
    record = store.get(key) if key is not None else None
    if not isinstance(record, Mapping):
        report.detail = "no subscriber record to target"
        return
    identities = {attribute: str(record[attribute])
                  for attribute in _IDENTITY_ATTRIBUTES
                  if record.get(attribute) is not None}
    if not identities:
        report.detail = f"record {key!r} carries no identities"
        return
    locator.deregister(identities)
    report.applied = True
    report.element_name = master_name
    report.key = key
    report.identities = identities


# -- kind: skip_apply -------------------------------------------------------------

def _channel_for(udr, corruption: SilentCorruption):
    replica_set = udr.replica_sets[corruption.partition_index]
    for channel in udr.channels:
        if channel.replica_set is replica_set and \
                udr.elements[channel.slave_element_name].site.name == \
                corruption.site_name:
            return channel
    return None


def _apply_skip_apply(udr, corruption: SilentCorruption,
                      report: CorruptionReport) -> None:
    channel = _channel_for(udr, corruption)
    if channel is None:
        report.detail = "no replication channel to site"
        return
    master_name, pending = channel.pending_records()
    if not pending:
        report.detail = "no unapplied shipment window open"
        return
    # Acknowledge without applying: the shipped cursor jumps over the
    # pending records, so the mux never re-ships them and the slave is
    # silently, permanently behind -- until reconciliation replays them.
    channel._shipped_lsn[master_name] = pending[-1].lsn
    report.applied = True
    report.element_name = channel.slave_element_name
    report.key = pending[0].keys[0] if pending[0].keys else None
    report.records_swallowed = len(pending)
