"""Seeded chaos campaigns with an always-on invariant checker.

A :class:`ChaosCampaign` composes a randomized schedule of element
crashes, symmetric and asymmetric network partitions, site disasters and
(when the deployment runs a reconciler) silent corruptions from one
campaign seed, injects it into a live deployment, heals everything, lets
the system quiesce, and returns a :class:`CampaignReport`.  The same
``(simulation seed, campaign seed)`` pair always produces the same
incidents at the same ticks -- a failing campaign is a replayable bug
report, not an anecdote.

While the campaign runs, an :class:`InvariantChecker` watches the
deployment from below -- WAL commit hooks on every partition copy plus a
periodic sweep -- and records violations of the safety properties the
membership plane exists to guarantee:

* **no split-brain writes** -- an origin commit by a copy that is not its
  partition's master at the instant of commit;
* **fenced promotions** -- every detector-triggered promotion found the
  deposed master already crashed or fenced;
* **single primary** -- never two unfenced, in-service primary copies of
  one partition;
* **no acked write lost after heal** -- every write acknowledged by a
  master whose record still exists durably *somewhere* reaches the final
  master (writes wiped by a crash before checkpoint or shipment are the
  modelled durability gap of asynchronous replication -- e05's subject --
  and are reported separately, not as violations);
* **convergence** -- replicas byte-identical to their master, locators
  resolving every identity, once the campaign heals and quiesces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.corruption import SilentCorruption
from repro.faults.failures import PartitionIncident, SiteDisaster
from repro.faults.injector import FaultInjector, FaultSchedule
from repro.net.partition import NetworkPartition
from repro.sim import Interrupt


@dataclass(frozen=True)
class InvariantViolation:
    """One observed violation of a campaign safety property."""

    kind: str
    detail: str
    at: float


@dataclass
class CampaignReport:
    """What one seeded campaign did and whether the invariants held."""

    seed: int
    incidents: List[str]
    duration: float
    origin_commits: int
    acked_tracked: int
    split_brain_writes: int
    acked_writes_lost: int
    crash_durability_gap: int
    replicas_converged: bool
    locators_converged: bool
    promotions: int
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "CLEAN" if self.clean else \
            f"{len(self.violations)} VIOLATION(S)"
        return (f"campaign seed={self.seed}: {len(self.incidents)} "
                f"incidents, {self.promotions} promotions, "
                f"{self.origin_commits} commits, "
                f"split_brain={self.split_brain_writes}, "
                f"acked_lost={self.acked_writes_lost} "
                f"(crash gap {self.crash_durability_gap}), "
                f"converged={self.replicas_converged and self.locators_converged}"
                f" -- {status}")


class InvariantChecker:
    """WAL-level and periodic safety checks over a live deployment."""

    def __init__(self, udr, check_interval: float = 0.25):
        self.udr = udr
        self.check_interval = check_interval
        self.violations: List[InvariantViolation] = []
        #: ``(partition, key)`` -> latest acked ``(position, element)``.
        self.acked: Dict[Tuple[int, str], Tuple[Tuple[int, int], str]] = {}
        self.origin_commits = 0
        self.split_brain_writes = 0
        self.acked_writes_lost = 0
        self.crash_durability_gap = 0
        self._taps: List[Tuple[object, object]] = []
        self._promotions_checked = 0
        self._running = False
        self._process = None
        for index in sorted(udr.replica_sets):
            replica_set = udr.replica_sets[index]
            for element_name in replica_set.member_names:
                self._tap(index, replica_set, element_name)

    # -- commit-time checks -----------------------------------------------------

    def _tap(self, index: int, replica_set, element_name: str) -> None:
        copy = replica_set.copy_on(element_name)
        origin = copy.transactions.name

        def on_commit(record) -> None:
            if record.origin != origin:
                return  # a replication/handoff apply, not a local commit
            self.origin_commits += 1
            if replica_set.master_element_name != element_name:
                self.split_brain_writes += 1
                self.violations.append(InvariantViolation(
                    kind="split_brain_write",
                    detail=(f"{element_name} committed seq "
                            f"{record.commit_seq} (epoch {record.epoch}) "
                            f"on partition {index} while "
                            f"{replica_set.master_element_name} was master"),
                    at=self.udr.sim.now))
            for operation in record.operations:
                self.acked[(index, operation.key)] = (record.position,
                                                      element_name)

        copy.wal.subscribe(on_commit)
        self._taps.append((copy.wal, on_commit))

    def close(self) -> None:
        for wal, listener in self._taps:
            wal.unsubscribe(listener)
        self._taps = []

    # -- the periodic sweep ------------------------------------------------------

    def start(self):
        if self._running:
            return self._process
        self._running = True
        self._process = self.udr.sim.process(self._sweep(),
                                             name="chaos:invariants")
        return self._process

    def stop(self) -> None:
        self._running = False
        process, self._process = self._process, None
        if process is not None and process.is_alive:
            process.interrupt("invariant checker stopped")

    def _sweep(self):
        try:
            while self._running:
                yield self.udr.sim.timeout(self.check_interval)
                if not self._running:
                    return
                self.check_now()
        except Interrupt:
            return

    def check_now(self) -> None:
        """One synchronous pass of the structural invariants."""
        for index in sorted(self.udr.replica_sets):
            replica_set = self.udr.replica_sets[index]
            primaries = []
            for name in replica_set.member_names:
                copy = replica_set.copy_on(name)
                if copy.is_primary and not copy.transactions.fenced and \
                        replica_set.element(name).available:
                    primaries.append(name)
            if len(primaries) > 1:
                self.violations.append(InvariantViolation(
                    kind="dual_primary",
                    detail=(f"partition {index} has unfenced in-service "
                            f"primaries {primaries}"),
                    at=self.udr.sim.now))
        membership = getattr(self.udr, "membership", None)
        if membership is not None:
            history = membership.protocol.history
            for record in history[self._promotions_checked:]:
                if record.trigger == "detector" and \
                        record.old_master_fenced is False:
                    self.violations.append(InvariantViolation(
                        kind="unfenced_promotion",
                        detail=(f"partition {record.partition_index} "
                                f"promoted to {record.new_master} at epoch "
                                f"{record.epoch} while deposed master "
                                f"{record.old_master} was live and "
                                f"unfenced"),
                        at=record.at))
            self._promotions_checked = len(history)

    # -- final (post-heal) checks --------------------------------------------------

    def final_check(self) -> Tuple[bool, bool]:
        """Post-heal sweep; returns (replicas converged, locators converged).

        An acked write is *lost* when the final master of its partition
        holds no version of the key at or past the acked position **and**
        the originating copy's WAL still durably carries the record -- if
        the WAL lost it too, the write died in a crash before checkpoint
        or shipment, which is the known durability gap of asynchronous
        replication (reported in ``crash_durability_gap``), not a fencing
        bug.
        """
        self.check_now()
        for (index, key) in sorted(self.acked):
            position, element_name = self.acked[(index, key)]
            replica_set = self.udr.replica_sets[index]
            master_name = replica_set.master_element_name
            if master_name is None:
                continue
            newest = replica_set.copy_on(master_name).store.latest(key)
            if newest is not None and newest.position >= position:
                continue
            origin_copy = replica_set.copy_on(element_name)
            durable = any(
                record.position == position and
                any(operation.key == key
                    for operation in record.operations)
                for record in origin_copy.wal.records)
            if durable:
                self.acked_writes_lost += 1
                self.violations.append(InvariantViolation(
                    kind="acked_write_lost",
                    detail=(f"key {key!r} acked at position {position} on "
                            f"{element_name} (partition {index}) but the "
                            f"final master {master_name} tops out at "
                            f"{newest.position if newest else None}"),
                    at=self.udr.sim.now))
            else:
                self.crash_durability_gap += 1
        replicas = self._replicas_converged()
        locators = self._locators_converged()
        if not replicas:
            self.violations.append(InvariantViolation(
                kind="replica_divergence",
                detail="replica copies differ from master state after heal",
                at=self.udr.sim.now))
        if not locators:
            self.violations.append(InvariantViolation(
                kind="locator_divergence",
                detail="a locator cannot resolve a mastered identity",
                at=self.udr.sim.now))
        return replicas, locators

    def _replicas_converged(self) -> bool:
        for replica_set in self.udr.replica_sets.values():
            master = replica_set.master_element_name
            if master is None:
                return False
            master_store = replica_set.copy_on(master).store
            truth = {key: master_store.read_committed(key)
                     for key in master_store.keys()}
            for slave in replica_set.slave_names():
                store = replica_set.copy_on(slave).store
                state = {key: store.read_committed(key)
                         for key in store.keys()}
                if state != truth:
                    return False
        return True

    def _locators_converged(self) -> bool:
        # Imported here: the directory layer is a consumer-side check, not
        # a dependency of fault injection.
        from repro.directory.errors import (
            LocatorSyncInProgress,
            UnknownIdentity,
        )
        from repro.directory.locator import ProvisionedLocator
        for replica_set in self.udr.replica_sets.values():
            master = replica_set.master_element_name
            if master is None:
                return False
            store = replica_set.copy_on(master).store
            for key in store.keys():
                record = store.get(key)
                if not isinstance(record, dict) or "imsi" not in record:
                    continue
                for locator in self.udr.locators.values():
                    if not isinstance(locator, ProvisionedLocator):
                        continue
                    try:
                        locator.locate("imsi", record["imsi"])
                    except UnknownIdentity:
                        return False
                    except LocatorSyncInProgress:
                        continue
        return True


class ChaosCampaign:
    """One seeded, randomized fault schedule plus the invariant checker.

    Parameters
    ----------
    udr:
        A started :class:`~repro.core.udr.UDRNetworkFunction`.  Campaigns
        are built for membership-enabled deployments (the acked-write
        invariant relies on epoch fencing and the rejoin handoff); they
        run against oracle deployments too, but then crashes use the
        instant oracle fail-over.
    seed:
        Campaign seed.  Incident kinds, targets, times and durations all
        derive from ``sim.rng(f"chaos.campaign.{seed}")``, so the same
        simulation seed and campaign seed replay identically.
    duration:
        Fault window length (seconds of simulated time).  All incidents
        start inside the first 60% of it, so the tail end is already
        healing before :meth:`run`'s explicit heal.
    incidents:
        How many incidents to draw.
    """

    KINDS = ("crash", "partition", "asym_partition", "disaster")

    def __init__(self, udr, seed: int, duration: float = 20.0,
                 incidents: int = 4, check_interval: float = 0.25,
                 quiesce: float = 4.0):
        if duration <= 0:
            raise ValueError("campaign duration must be positive")
        if incidents < 1:
            raise ValueError("a campaign needs at least one incident")
        self.udr = udr
        self.seed = seed
        self.duration = duration
        self.incident_count = incidents
        self.quiesce = quiesce
        self.checker = InvariantChecker(udr, check_interval=check_interval)
        self.descriptions: List[str] = []
        self._crashes: List[Tuple[float, str, float]] = []
        self._schedule: Optional[FaultSchedule] = None

    # -- planning ---------------------------------------------------------------

    def plan(self) -> FaultSchedule:
        """Draw the incident schedule from the campaign seed."""
        if self._schedule is not None:
            return self._schedule
        rng = self.udr.sim.rng(f"chaos.campaign.{self.seed}")
        schedule = FaultSchedule()
        sites = list(self.udr.topology.sites)
        elements = sorted(self.udr.elements)
        window = self.duration * 0.6
        kinds = list(self.KINDS)
        if getattr(self.udr, "reconciler", None) is not None:
            kinds.append("corruption")
        busy: Dict[str, List[Tuple[float, float]]] = {}

        def reserve(names: List[str], start: float, end: float) -> bool:
            for name in names:
                for (other_start, other_end) in busy.get(name, []):
                    if start < other_end and other_start < end:
                        return False
            for name in names:
                busy.setdefault(name, []).append((start, end))
            return True

        drawn = 0
        attempts = 0
        while drawn < self.incident_count and attempts < 200:
            attempts += 1
            kind = rng.choice(kinds)
            start = round(rng.uniform(0.5, max(window, 0.6)), 3)
            length = round(rng.uniform(1.0, max(self.duration * 0.3, 1.5)),
                           3)
            end = min(start + length, self.duration)
            if kind == "crash":
                element = rng.choice(elements)
                if not reserve([element], start, end):
                    continue
                self._crashes.append((start, element, end - start))
                self.descriptions.append(
                    f"t={start}: crash {element} (repair {end - start:.1f}s)")
            elif kind in ("partition", "asym_partition"):
                site = rng.choice(sites)
                if not reserve([f"site:{site.name}"], start, end):
                    continue
                if kind == "asym_partition":
                    partition = NetworkPartition.one_way(
                        site, name=f"chaos-oneway-{site.name}@{start}")
                    label = "one-way cut"
                else:
                    partition = NetworkPartition.isolating(
                        site, name=f"chaos-split-{site.name}@{start}")
                    label = "isolation"
                schedule.add_partition(PartitionIncident(
                    partition=partition, start=start, duration=end - start))
                self.descriptions.append(
                    f"t={start}: {label} of {site.name} for "
                    f"{end - start:.1f}s")
            elif kind == "disaster":
                site = rng.choice(sites)
                if not reserve([f"site:{site.name}"], start, end):
                    continue
                schedule.add_disaster(SiteDisaster(
                    site_name=site.name, start=start, duration=end - start))
                self.descriptions.append(
                    f"t={start}: disaster at {site.name} for "
                    f"{end - start:.1f}s")
            else:  # corruption (only drawn when a reconciler runs)
                site = rng.choice(sites)
                index = rng.choice(sorted(self.udr.replica_sets))
                if not reserve([f"corrupt:{site.name}:{index}"],
                               start, start + 0.001):
                    continue
                schedule.add_corruption(SilentCorruption(
                    site.name, index, "byte_flip", at=start))
                self.descriptions.append(
                    f"t={start}: byte flip on partition {index} at "
                    f"{site.name}")
            drawn += 1
        schedule.validate()
        self._schedule = schedule
        return schedule

    # -- running ----------------------------------------------------------------

    def run(self) -> CampaignReport:
        """Inject the planned schedule, heal, quiesce, and report.

        The caller owns the workload: start traffic processes before
        calling ``run`` (or run a silent campaign -- the structural
        invariants still apply).  Simulated time advances by
        ``duration + quiesce`` plus the longest repair overhang.
        """
        sim = self.udr.sim
        schedule = self.plan()
        injector = FaultInjector(self.udr, schedule)
        start = sim.now
        self.checker.start()
        injector.start()
        for (at, element, repair) in self._crashes:
            sim.process(self._crash_later(at, element, repair),
                        name=f"chaos:crash:{element}@{at}")
        sim.run(until=start + self.duration)
        self._heal()
        sim.run(until=start + self.duration + self.quiesce)
        self.checker.stop()
        replicas, locators = self.checker.final_check()
        self.checker.close()
        membership = getattr(self.udr, "membership", None)
        return CampaignReport(
            seed=self.seed,
            incidents=list(self.descriptions),
            duration=sim.now - start,
            origin_commits=self.checker.origin_commits,
            acked_tracked=len(self.checker.acked),
            split_brain_writes=self.checker.split_brain_writes,
            acked_writes_lost=self.checker.acked_writes_lost,
            crash_durability_gap=self.checker.crash_durability_gap,
            replicas_converged=replicas,
            locators_converged=locators,
            promotions=(membership.stats.promotions
                        if membership is not None else 0),
            violations=list(self.checker.violations),
        )

    def _crash_later(self, at: float, element_name: str, repair: float):
        sim = self.udr.sim
        if at > sim.now:
            yield sim.timeout(at - sim.now)
        element = self.udr.elements.get(element_name)
        if element is None or not element.available:
            return
        component = self.udr.availability_manager.component(element_name)
        component.repair_time = repair
        self.udr.availability_manager.fail_component(element_name,
                                                     auto_repair=True)
        if getattr(self.udr, "membership", None) is None:
            # Oracle deployments have no detector; promote immediately,
            # as every pre-membership experiment did.
            self.udr.fail_over(element_name)

    def _heal(self) -> None:
        """End every fault: partitions, site failures, element crashes."""
        self.udr.network.clear_partitions()
        for site in self.udr.topology.sites:
            if self.udr.network.site_failed(site):
                self.udr.network.restore_site(site)
        for poa in self.udr.points_of_access:
            if not poa.available:
                poa.restore()
        for name, element in sorted(self.udr.elements.items()):
            if not element.available:
                self.udr.recover_element(name)


def run_campaigns(udr_factory, seeds, **campaign_options
                  ) -> List[CampaignReport]:
    """Run one fresh deployment + campaign per seed; returns the reports.

    ``udr_factory(seed)`` must return a *started* deployment (and may
    attach whatever workload it wants).  Used by the CI smoke job and the
    chaos tests; each campaign gets an isolated simulation, so a
    violation pins its seed exactly.
    """
    reports = []
    for seed in seeds:
        udr = udr_factory(seed)
        campaign = ChaosCampaign(udr, seed=seed, **campaign_options)
        reports.append(campaign.run())
        udr.stop()
    return reports
