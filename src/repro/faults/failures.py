"""Fault descriptions: what can go wrong and when.

Three kinds of incident cover everything the paper discusses:

* :class:`PartitionIncident` -- the IP backbone splits for a while (the "P"
  in CAP, section 4.1's 30-second glitch, ...);
* :class:`SiteDisaster` -- a whole site is lost (the natural-disaster case
  geographic redundancy exists for);
* :class:`ElementFailureProcess` -- storage elements crash stochastically
  with a given MTBF and are repaired after an MTTR, which is what the
  availability model and experiment E11 are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.partition import NetworkPartition
from repro.sim import units


@dataclass(frozen=True)
class PartitionIncident:
    """A network partition with a start time and a duration."""

    partition: NetworkPartition
    start: float
    duration: float

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise ValueError("partition incidents need start >= 0 and "
                             "duration > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class SiteDisaster:
    """Loss of a whole site (and everything running there)."""

    site_name: str
    start: float
    duration: float = 24 * units.HOUR

    def __post_init__(self):
        if self.start < 0 or self.duration <= 0:
            raise ValueError("disasters need start >= 0 and duration > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class ElementFailureProcess:
    """A stochastic crash/repair process for storage elements.

    Exponentially distributed times between failures (mean ``mtbf``) and
    fixed repair time ``mttr``; the schedule is drawn once, deterministically
    from the supplied random stream, so experiments are reproducible.
    """

    mtbf: float = 180 * units.DAY
    mttr: float = 4 * units.HOUR

    def __post_init__(self):
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("MTBF and MTTR must be positive")

    def draw_failure_times(self, rng, horizon: float,
                           start: float = 0.0) -> List[float]:
        """Crash instants for one element up to ``horizon``."""
        times: List[float] = []
        current = start
        while True:
            current += rng.expovariate(1.0 / self.mtbf)
            if current >= horizon:
                break
            times.append(current)
            current += self.mttr  # the element cannot fail while it is down
        return times

    def expected_failures(self, horizon: float) -> float:
        return horizon / (self.mtbf + self.mttr)

    def expected_unavailability(self) -> float:
        """Steady-state unavailable fraction of a single, unreplicated element."""
        return self.mttr / (self.mtbf + self.mttr)
