"""WAL-tap change stream: ordered, idempotent-by-commit-seq change events.

The stream subscribes to *every* member copy's commit log of every data
partition, exactly like the DIT catalog does
(:meth:`repro.core.deployment.DeploymentBuilder._build_catalog`): each tap
filters to records the copy itself committed (``record.origin`` equals the
copy's own transaction-manager name), so replication applies -- which
preserve the originating master's name -- never fold the same logical
commit twice, and the wiring keeps working across fail-over, when a
promoted copy starts committing under its own name.

On top of the origin filter the stream deduplicates by ``commit_seq`` per
partition, which makes delivery idempotent under re-delivery (a replayed
or re-applied record with an already-folded sequence number is counted in
``cdc.duplicates`` and dropped).  Per-partition event order is therefore
the master's serialisation order -- the same order every slave applies.

Every tap also maintains a **tapped-LSN cursor** per commit log: the
highest LSN the stream has processed on that log.  The replication mux
includes these cursors in its WAL-retention minimum
(:meth:`repro.replication.mux.ReplicationMux.bind_cdc`), so retention can
never truncate a record the stream has not seen -- a paused stream (e.g. a
consumer catching up) pins the log instead of losing events, and
:meth:`ChangeStream.resume` drains the buffered suffix through
:meth:`~repro.storage.wal.WriteAheadLog.since`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.storage.records import RecordVersion
from repro.storage.wal import LogRecord, WriteOperation


@dataclass(frozen=True)
class ChangeEvent:
    """One logical commit of one data partition, as seen by the CDC plane."""

    partition_index: int
    commit_seq: int
    lsn: int
    transaction_id: int
    origin: str
    timestamp: float
    operations: Tuple[WriteOperation, ...]
    #: Promotion epoch that durably committed the record (0 before the
    #: membership plane's first promotion).
    epoch: int = 0

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(operation.key for operation in self.operations)

    @property
    def position(self) -> Tuple[int, int]:
        """Recency ordering key across promotion epochs."""
        return (self.epoch, self.commit_seq)

    def __repr__(self) -> str:
        return (f"<ChangeEvent p{self.partition_index} "
                f"seq={self.commit_seq} keys={list(self.keys)}>")


def replay_events(events, store) -> int:
    """Apply change events to a :class:`~repro.storage.engine.RecordStore`.

    Installs each event's operations as :class:`RecordVersion`\\ s exactly
    the way a replication apply would, so replaying a partition's full
    stream (or its suffix past any checkpoint) into an empty (or
    checkpointed) store reproduces the live store's state --
    the property ``tests/test_cdc.py`` pins.  Returns the number of
    versions applied.
    """
    applied = 0
    for event in events:
        for operation in event.operations:
            store.apply_version(RecordVersion(
                key=operation.key,
                value=operation.value,
                commit_seq=event.commit_seq,
                transaction_id=event.transaction_id,
                origin=event.origin,
                epoch=event.epoch,
            ))
            applied += 1
    return applied


class _Tap:
    """One subscribed commit log (a member copy of one partition)."""

    __slots__ = ("partition_index", "wal", "copy_name", "listener")

    def __init__(self, partition_index: int, wal, copy_name: str, listener):
        self.partition_index = partition_index
        self.wal = wal
        self.copy_name = copy_name
        self.listener = listener


class ChangeStream:
    """Per-partition ordered change events folded from WAL commit hooks."""

    def __init__(self, *, retention_events: Optional[int] = None,
                 metrics=None):
        if retention_events is not None and retention_events < 1:
            raise ValueError("stream retention must be at least 1 event")
        self.retention_events = retention_events
        self.metrics = metrics
        #: Folded events per partition, in stream (fold) order -- ascending
        #: ``commit_seq`` within each promotion epoch.
        self._events: Dict[int, List[ChangeEvent]] = {}
        #: Latest folded ``commit_seq`` per partition (the checkpoint).
        self._last_seq: Dict[int, int] = {}
        #: Latest folded ``(epoch, commit_seq)`` per partition (the dedupe
        #: line; epoch-aware because a promotion restarts commit numbering).
        self._last_position: Dict[int, Tuple[int, int]] = {}
        self._taps: List[_Tap] = []
        #: Tapped-LSN cursor per commit log, keyed by ``id(wal)``.
        self._tapped_lsn: Dict[int, int] = {}
        self._consumers: List[Callable[[ChangeEvent], None]] = []
        self._paused = False
        # Plain counters mirrored into metrics when bound; tests without a
        # registry read these directly.
        self.events_folded = 0
        self.duplicates_skipped = 0
        self.gap_records_lost = 0
        self.events_evicted = 0

    # -- wiring ----------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        self.metrics = metrics

    def tap(self, partition_index: int, copy) -> None:
        """Subscribe one member copy's commit log (origin-filtered).

        The cursor starts at the log's current tail: the stream captures
        commits from the moment it is wired, which the deployment builder
        does before any subscriber is loaded.
        """
        copy_name = copy.transactions.name
        wal = copy.wal
        tap = _Tap(partition_index, wal, copy_name, None)

        def on_commit(record: LogRecord) -> None:
            if self._paused:
                return
            self._ingest(tap, record)

        tap.listener = on_commit
        wal.subscribe(on_commit)
        self._taps.append(tap)
        self._tapped_lsn.setdefault(id(wal), wal.last_lsn)

    def close(self) -> None:
        """Unsubscribe every tap (the stream stops folding)."""
        for tap in self._taps:
            tap.wal.unsubscribe(tap.listener)
        self._taps = []

    def subscribe(self, consumer: Callable[[ChangeEvent], None]) -> None:
        """Run ``consumer(event)`` synchronously for every folded event."""
        if consumer not in self._consumers:
            self._consumers.append(consumer)

    # -- folding ----------------------------------------------------------------

    def _ingest(self, tap: _Tap, record: LogRecord) -> None:
        # The cursor advances for every record seen on the log -- filtered
        # replication applies included -- because the stream has *processed*
        # that LSN; retention pinning only needs unseen records kept.
        key = id(tap.wal)
        if record.lsn > self._tapped_lsn.get(key, 0):
            self._tapped_lsn[key] = record.lsn
        if record.origin != tap.copy_name:
            return
        partition = tap.partition_index
        last = self._last_position.get(partition, (0, 0))
        if record.position <= last:
            self.duplicates_skipped += 1
            self._count("cdc.duplicates")
            return
        event = ChangeEvent(
            partition_index=partition,
            commit_seq=record.commit_seq,
            lsn=record.lsn,
            transaction_id=record.transaction_id,
            origin=record.origin,
            timestamp=record.timestamp,
            operations=record.operations,
            epoch=record.epoch,
        )
        self._last_seq[partition] = record.commit_seq
        self._last_position[partition] = record.position
        events = self._events.setdefault(partition, [])
        events.append(event)
        if self.retention_events is not None and \
                len(events) > self.retention_events:
            del events[:len(events) - self.retention_events]
            self.events_evicted += 1
            self._count("cdc.stream.evicted")
        self.events_folded += 1
        self._count("cdc.events")
        for consumer in tuple(self._consumers):
            consumer(event)

    # -- pause / resume ----------------------------------------------------------

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        """Stop folding; cursors freeze, so retention pins the tapped logs."""
        self._paused = True

    def resume(self) -> None:
        """Drain everything committed while paused, in log order per tap.

        A gap -- the log's oldest retained record numbered past the cursor,
        i.e. retention truncated records the stream never saw -- is counted
        in ``cdc.gaps`` (``gap_records_lost``); with the mux's CDC-aware
        retention bound this stays zero, which the property tests assert.
        """
        self._paused = False
        for tap in self._taps:
            cursor = self._tapped_lsn.get(id(tap.wal), 0)
            pending = tap.wal.since(cursor)
            if pending and cursor > 0:
                lost = pending[0].lsn - (cursor + 1)
                if lost > 0:
                    self.gap_records_lost += lost
                    self._count("cdc.gaps", lost)
            for record in pending:
                self._ingest(tap, record)

    # -- cursors / reading --------------------------------------------------------

    def cursor_for(self, wal) -> Optional[int]:
        """The tapped-LSN cursor of ``wal``, or ``None`` when untapped.

        The replication mux calls this from its retention pass; ``None``
        leaves that log unconstrained by the CDC plane.
        """
        return self._tapped_lsn.get(id(wal))

    def checkpoint(self, partition_index: int) -> int:
        """The highest folded ``commit_seq`` of one partition (0 when none)."""
        return self._last_seq.get(partition_index, 0)

    def partitions(self) -> List[int]:
        return sorted(self._events)

    def events(self, partition_index: int) -> List[ChangeEvent]:
        """All retained events of one partition, ascending ``commit_seq``."""
        return list(self._events.get(partition_index, ()))

    def events_since(self, partition_index: int,
                     commit_seq: int) -> List[ChangeEvent]:
        """Retained events with ``commit_seq`` strictly greater (ascending).

        Mirrors :meth:`~repro.storage.wal.WriteAheadLog.since` index
        arithmetic where the sequence is dense, falling back to a scan when
        it is not (stream retention may drop a prefix).
        """
        events = self._events.get(partition_index)
        if not events:
            return []
        if commit_seq <= 0 or commit_seq < events[0].commit_seq:
            return list(events)
        first = events[0].commit_seq
        index = commit_seq - first + 1
        if 0 < index <= len(events) and \
                events[index - 1].commit_seq == commit_seq:
            return events[index:]
        # Fold order is stream order even across promotion epochs (where
        # commit numbering can restart): resume strictly after the *latest*
        # event carrying the cursor sequence.
        for position in range(len(events) - 1, -1, -1):
            if events[position].commit_seq == commit_seq:
                return events[position + 1:]
        return [event for event in events if event.commit_seq > commit_seq]

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def __repr__(self) -> str:
        return (f"<ChangeStream taps={len(self._taps)} "
                f"events={self.events_folded} paused={self._paused}>")
