"""Per-record audit history fed by the change stream.

ADSJournalsDB pairs every table with a ``*History`` table because
provisioning systems need an audit trail; this module is the equivalent for
the subscriber store.  The :class:`HistoryStore` consumes
:class:`~repro.cdc.stream.ChangeEvent`\\ s and keeps, per record key, the
list of :class:`HistoryEntry` -- **who** (the originating copy), **when**
(the commit's virtual timestamp), and **what** (the attribute-level diff
against the previous version) for every mutation.

History is retained independently of ``wal_retention``: the mux may
truncate a master log down to its retention bound while the history keeps
the full (or per-record-capped) mutation trail, which is what makes
``Session.history`` answer past the log horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.cdc.stream import ChangeEvent
from repro.storage.records import TOMBSTONE

#: Record attributes that name a subscriber identity.  Mirrors
#: ``repro.api.operations.IDENTITY_TYPES`` (asserted equal by the CDC test
#: suite); duplicated here so the storage-adjacent CDC plane does not import
#: the API layer.
IDENTITY_ATTRIBUTES: Tuple[str, ...] = ("imsi", "msisdn", "impu", "impi")


@dataclass(frozen=True)
class HistoryEntry:
    """One audited mutation of one record.

    ``changes`` is the attribute-level diff against the previous version
    (``None``-valued attributes were removed); for deletes it is ``None``.
    """

    key: str
    commit_seq: int
    transaction_id: int
    origin: str
    timestamp: float
    kind: str  # "create" | "modify" | "delete"
    changes: Optional[Dict[str, Any]]

    def __repr__(self) -> str:
        return (f"<HistoryEntry {self.key!r} seq={self.commit_seq} "
                f"{self.kind} by={self.origin!r} at={self.timestamp}>")


def _diff(before: Optional[Mapping], after: Any) -> Optional[Dict[str, Any]]:
    """Attribute diff of two record values (``None`` marks removals)."""
    if not isinstance(after, Mapping):
        return None if after is TOMBSTONE else {"value": after}
    previous = before if isinstance(before, Mapping) else {}
    changes: Dict[str, Any] = {}
    for attribute, value in after.items():
        if attribute not in previous or previous[attribute] != value:
            changes[attribute] = value
    for attribute in previous:
        if attribute not in after:
            changes[attribute] = None
    return changes


class HistoryStore:
    """Audit trail of every subscriber mutation, keyed by record key."""

    def __init__(self, stream=None, *,
                 max_entries_per_record: Optional[int] = None,
                 metrics=None):
        if max_entries_per_record is not None and max_entries_per_record < 1:
            raise ValueError("history cap must be at least 1 entry")
        self.max_entries_per_record = max_entries_per_record
        self.metrics = metrics
        self._entries: Dict[str, List[HistoryEntry]] = {}
        #: Latest known value per key (the diff base).
        self._latest: Dict[str, Any] = {}
        #: ``(identity attribute, value) -> record key``.
        self._identity_index: Dict[Tuple[str, str], str] = {}
        self.entries_recorded = 0
        self.entries_evicted = 0
        if stream is not None:
            stream.subscribe(self.apply_event)

    def bind_metrics(self, metrics) -> None:
        self.metrics = metrics

    # -- folding ----------------------------------------------------------------

    def apply_event(self, event: ChangeEvent) -> None:
        """Fold one change event into the audit trail (stream consumer)."""
        for operation in event.operations:
            before = self._latest.get(operation.key)
            value = operation.value
            if value is TOMBSTONE:
                kind = "delete"
            elif before is None or before is TOMBSTONE:
                kind = "create"
            else:
                kind = "modify"
            entry = HistoryEntry(
                key=operation.key,
                commit_seq=event.commit_seq,
                transaction_id=event.transaction_id,
                origin=event.origin,
                timestamp=event.timestamp,
                kind=kind,
                changes=_diff(before, value),
            )
            entries = self._entries.setdefault(operation.key, [])
            entries.append(entry)
            if self.max_entries_per_record is not None and \
                    len(entries) > self.max_entries_per_record:
                del entries[:len(entries) - self.max_entries_per_record]
                self.entries_evicted += 1
                self._count("cdc.history.evicted")
            self._latest[operation.key] = value
            if isinstance(value, Mapping):
                for attribute in IDENTITY_ATTRIBUTES:
                    identity = value.get(attribute)
                    if identity is not None:
                        self._identity_index[(attribute, str(identity))] = \
                            operation.key
            self.entries_recorded += 1
            self._count("cdc.history.entries")

    # -- queries -----------------------------------------------------------------

    def history(self, key: str) -> List[HistoryEntry]:
        """The audited mutations of one record, oldest first."""
        return list(self._entries.get(key, ()))

    def resolve(self, identity_type: str, value: str) -> Optional[str]:
        """The record key an identity maps to, or ``None`` when unknown."""
        return self._identity_index.get((identity_type, str(value)))

    def history_of_identity(self, identity_type: str,
                            value: str) -> List[HistoryEntry]:
        key = self.resolve(identity_type, value)
        return self.history(key) if key is not None else []

    def latest_value(self, key: str) -> Any:
        """The newest value the trail has seen for ``key`` (may be
        :data:`~repro.storage.records.TOMBSTONE`)."""
        return self._latest.get(key)

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def identity_entries(self):
        """Live ``((identity_type, value), record key)`` pairs -- the
        reconciler's locator sweep walks these."""
        return self._identity_index.items()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def __repr__(self) -> str:
        return (f"<HistoryStore records={len(self._entries)} "
                f"entries={self.entries_recorded}>")
