"""Merkle-style partition digests for master/replica comparison.

A :class:`StoreDigest` summarises one partition copy's live state as a
small tree: keys are assigned to ``buckets`` by a deterministic hash
(CRC32 -- Python's built-in ``hash`` is salted per process, which would
make bucket layouts non-reproducible), each bucket hashes its sorted
``(key, commit_seq, value)`` leaves, and the root hashes the bucket
digests.  Two copies in the same state produce identical digests; a
mismatch narrows to the differing buckets, so the reconciler only walks
keys of suspect buckets instead of the whole store.

The value leaf covers the *value bytes*, not just the version number: a
silently corrupted replica (same ``commit_seq``, different attribute
bytes) digests differently, which is exactly the drift class
``SilentCorruption(kind="byte_flip")`` injects.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.storage.records import TOMBSTONE

DEFAULT_BUCKETS = 16


def bucket_of(key: str, buckets: int) -> int:
    """Deterministic bucket index of one record key."""
    return zlib.crc32(key.encode("utf-8")) % buckets


def _canonical(value) -> str:
    """A deterministic, content-covering token of one record value."""
    if value is TOMBSTONE:
        return "<tombstone>"
    if isinstance(value, Mapping):
        inner = ",".join(f"{name}={_canonical(value[name])}"
                         for name in sorted(value))
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in value)) + "}"
    return repr(value)


@dataclass(frozen=True)
class StoreDigest:
    """The digest tree of one partition copy: root, buckets, leaf count."""

    root: str
    buckets: Tuple[str, ...]
    leaves: int

    def diff(self, other: "StoreDigest") -> List[int]:
        """Indices of buckets whose digests differ (all, on layout change)."""
        if len(self.buckets) != len(other.buckets):
            return list(range(max(len(self.buckets), len(other.buckets))))
        return [index for index, (mine, theirs)
                in enumerate(zip(self.buckets, other.buckets))
                if mine != theirs]

    def __repr__(self) -> str:
        return (f"<StoreDigest root={self.root[:12]} "
                f"buckets={len(self.buckets)} leaves={self.leaves}>")


def digest_store(store, buckets: int = DEFAULT_BUCKETS) -> StoreDigest:
    """Digest one :class:`~repro.storage.engine.RecordStore`'s live state."""
    if buckets < 1:
        raise ValueError("digest needs at least one bucket")
    leaves: List[List[str]] = [[] for _ in range(buckets)]
    count = 0
    for key in store.keys():
        version = store.latest(key)
        if version is None or version.is_delete:
            continue
        leaves[bucket_of(key, buckets)].append(
            f"{key}|{version.commit_seq}|{_canonical(version.value)}")
        count += 1
    bucket_digests = []
    root = hashlib.blake2b(digest_size=16)
    for bucket in leaves:
        digest = hashlib.blake2b(digest_size=16)
        for leaf in sorted(bucket):
            digest.update(leaf.encode("utf-8"))
        bucket_digest = digest.hexdigest()
        bucket_digests.append(bucket_digest)
        root.update(bucket_digest.encode("ascii"))
    return StoreDigest(root=root.hexdigest(),
                       buckets=tuple(bucket_digests),
                       leaves=count)


def keys_in_bucket(store, bucket_index: int, buckets: int) -> List[str]:
    """Live keys of one copy that hash into one (suspect) bucket."""
    return sorted(key for key in store.keys()
                  if bucket_of(key, buckets) == bucket_index)
