"""Change-data-capture plane: WAL-tap stream, audit history, reconciliation.

The CDC plane taps the commit logs the replication mux already wakes on
(:meth:`repro.storage.wal.WriteAheadLog.subscribe`) and turns them into an
ordered, idempotent-by-commit-seq change stream per data partition:

* :class:`~repro.cdc.stream.ChangeStream` -- folds every member copy's
  commits (origin-filtered, so each logical commit appears exactly once,
  across fail-over included) into per-partition event sequences, and pins
  WAL retention through its tapped-LSN cursors;
* :class:`~repro.cdc.history.HistoryStore` -- per-record audit history
  (who/what/when for every subscriber mutation), retained past
  ``wal_retention`` and queryable through ``Session.history``;
* :class:`~repro.cdc.reconcile.Reconciler` -- an online consumer that
  periodically diffs master vs replica vs locator state with merkle-style
  partition digests and repairs drift in place, counting
  ``reconciliation.detected`` / ``.repaired`` / ``.false_positive``.
"""

from repro.cdc.digest import StoreDigest, bucket_of, digest_store
from repro.cdc.history import HistoryEntry, HistoryStore, IDENTITY_ATTRIBUTES
from repro.cdc.reconcile import Reconciler, RepairAction
from repro.cdc.stream import ChangeEvent, ChangeStream, replay_events

__all__ = [
    "ChangeEvent",
    "ChangeStream",
    "HistoryEntry",
    "HistoryStore",
    "IDENTITY_ATTRIBUTES",
    "Reconciler",
    "RepairAction",
    "StoreDigest",
    "bucket_of",
    "digest_store",
    "replay_events",
]
