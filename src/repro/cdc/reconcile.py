"""Online reconciliation: diff master vs replica vs locator state, repair drift.

The :class:`Reconciler` runs as a background simulation process (the paper's
section-5 consistency-restoration idea turned into a *continuous* protocol):
every ``reconcile_interval`` it digests each partition copy
(:func:`~repro.cdc.digest.digest_store`), narrows any master/slave mismatch
to the differing merkle buckets, and resolves each suspect key against the
live version chains:

* a slave **behind** the master while the replication channel still holds
  unshipped backlog is in-flight lag, not drift -- the mismatch is
  dismissed and counted ``reconciliation.false_positive``;
* a slave behind with a *clean* channel (cursor at the log tail, nothing
  left to ship -- the signature of a silently skipped shipment apply) is
  confirmed drift: the missing versions are replayed from the master's
  chain, exactly as a replication apply would have installed them;
* a slave at the **same** ``commit_seq`` with different value bytes (a
  silent byte flip) is confirmed drift: the master's version is
  re-installed on top, restoring the authoritative bytes;
* a key the slave has but the master does not (a phantom) is tombstoned.

While a slave copy is under repair its element is quarantined from the
read path (``OperationPipeline.read_quarantine``), so slave-policy reads
cannot observe half-repaired state; the quarantine lifts when the copy's
repair finishes.

A locator sweep closes the third corner of the diff: every identity the
:class:`~repro.cdc.history.HistoryStore` has audited must resolve on every
provisioned data-location instance to the static primary element of its
record's partition; missing or mis-pointed entries are re-registered
(``SilentCorruption(kind="locator_drop")`` is the injected counterpart).

Counters: ``reconciliation.detected`` / ``.repaired`` / ``.false_positive``
/ ``.rounds`` / ``.locator_repaired``; every repair is also logged as a
:class:`RepairAction` with the virtual detection time, which is what e23
uses to measure detection+repair latency under live dispatcher load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cdc.digest import digest_store, keys_in_bucket
from repro.directory.errors import LocatorSyncInProgress, UnknownIdentity
from repro.directory.locator import ProvisionedLocator
from repro.storage.records import TOMBSTONE, RecordVersion


@dataclass(frozen=True)
class RepairAction:
    """One confirmed-and-repaired drift item (the e23 latency sample)."""

    partition_index: int
    element_name: str
    key: str
    kind: str  # "missing_versions" | "value_restored" | "phantom_removed"
               # | "locator_registered"
    detected_at: float

    def __repr__(self) -> str:
        return (f"<RepairAction p{self.partition_index} {self.kind} "
                f"{self.key!r} on {self.element_name!r} "
                f"at={self.detected_at:.3f}>")


class Reconciler:
    """Periodic master/replica/locator diff-and-repair consumer."""

    def __init__(self, sim, deployment, policy, metrics, *,
                 history=None, pipeline=None):
        self.sim = sim
        self.deployment = deployment
        self.policy = policy
        self.metrics = metrics
        self.history = history
        self.pipeline = pipeline
        self.rounds = 0
        self.repairs: List[RepairAction] = []
        self._running = False
        #: One counter snapshot per round (not per status() call): the
        #: status surface reads this, keeping the registry scan off any
        #: caller's hot loop.
        self._status_counters: Dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running or self.policy.reconcile_interval is None:
            return
        self._running = True
        self.sim.process(self._run(), name="cdc:reconciler")

    def stop(self) -> None:
        self._running = False

    def _run(self):
        interval = self.policy.reconcile_interval
        while self._running:
            yield self.sim.timeout(interval)
            if not self._running:
                return
            yield from self.run_round()

    # -- one round ---------------------------------------------------------------

    def run_round(self):
        """Generator: digest, diff and repair every partition once."""
        self.rounds += 1
        self._count("reconciliation.rounds")
        for index in sorted(self.deployment.replica_sets):
            yield from self._reconcile_partition(index)
        self._reconcile_locators()
        self._status_counters = self.metrics.counters_with_prefix(
            "reconciliation.")

    def status(self) -> Dict[str, object]:
        """The reconciliation status surface (``Session.reconciliation_status``)."""
        return {
            "enabled": True,
            "running": self._running,
            "rounds": self.rounds,
            "repairs": len(self.repairs),
            "counters": dict(self._status_counters),
        }

    # -- partition diff ----------------------------------------------------------

    def _reconcile_partition(self, index: int):
        replica_set = self.deployment.replica_sets[index]
        master_name = replica_set.master_element_name
        if master_name is None:
            return
        if not self.deployment.elements[master_name].available:
            return
        master_copy = replica_set.copy_on(master_name)
        buckets = self.policy.digest_buckets
        yield self.sim.timeout(self.policy.digest_time)
        master_digest = digest_store(master_copy.store, buckets)
        for slave_name in replica_set.slave_names():
            if not self.deployment.elements[slave_name].available:
                continue
            slave_copy = replica_set.copy_on(slave_name)
            yield self.sim.timeout(self.policy.digest_time)
            slave_digest = digest_store(slave_copy.store, buckets)
            if slave_digest.root == master_digest.root:
                continue
            yield from self._repair_slave(
                index, replica_set, master_copy, slave_name, slave_copy,
                master_digest.diff(slave_digest))

    def _repair_slave(self, index, replica_set, master_copy, slave_name,
                      slave_copy, suspect_buckets):
        buckets = self.policy.digest_buckets
        channel = self._channel_for(replica_set, slave_name)
        quarantined = False
        if self.pipeline is not None and self.policy.quarantine_reads:
            self.pipeline.read_quarantine.add(slave_name)
            quarantined = True
        try:
            suspects = set()
            for bucket_index in suspect_buckets:
                suspects.update(keys_in_bucket(
                    master_copy.store, bucket_index, buckets))
                suspects.update(keys_in_bucket(
                    slave_copy.store, bucket_index, buckets))
            confirmed = 0
            lagged = 0
            for key in sorted(suspects):
                # Live reads, not the digest leaves: a commit that landed
                # (and possibly shipped) since the digest resolves here to
                # either equality or explained lag, never a bogus repair.
                master_version = master_copy.store.latest(key)
                slave_version = slave_copy.store.latest(key)
                if self._versions_equal(master_version, slave_version):
                    continue
                behind = slave_version is None or (
                    master_version is not None
                    and not master_version.is_delete
                    and slave_version.commit_seq < master_version.commit_seq)
                if behind and channel is not None and channel.has_backlog():
                    lagged += 1
                    continue
                confirmed += 1
                self._count("reconciliation.detected")
                yield self.sim.timeout(self.policy.repair_time)
                self._repair_key(index, slave_name, slave_copy, key,
                                 master_version, slave_version)
            if confirmed == 0 and lagged:
                self._count("reconciliation.false_positive")
        finally:
            if quarantined:
                self.pipeline.read_quarantine.discard(slave_name)

    def _repair_key(self, index: int, slave_name: str, slave_copy, key: str,
                    master_version: Optional[RecordVersion],
                    slave_version: Optional[RecordVersion]) -> None:
        if master_version is None or master_version.is_delete:
            # Phantom: the slave holds a live key the master does not.
            tombstone_seq = slave_version.commit_seq if slave_version else \
                slave_copy.store.last_applied_seq
            slave_copy.store.apply_version(RecordVersion(
                key=key, value=TOMBSTONE, commit_seq=tombstone_seq,
                transaction_id=0, origin=slave_copy.transactions.name))
            kind = "phantom_removed"
        elif slave_version is not None and \
                slave_version.commit_seq >= master_version.commit_seq:
            # Same (or newer) sequence, different bytes: restore the
            # master's authoritative version on top.
            slave_copy.store.apply_version(master_version)
            kind = "value_restored"
        else:
            # Behind with a clean channel: replay the missing suffix of the
            # master's version chain, as the skipped apply would have.
            floor = slave_version.commit_seq if slave_version else 0
            for version in slave_copy_missing_versions(
                    self._master_versions(index, key), floor):
                slave_copy.store.apply_version(version)
            kind = "missing_versions"
        self._count("reconciliation.repaired")
        self.repairs.append(RepairAction(
            partition_index=index, element_name=slave_name, key=key,
            kind=kind, detected_at=self.sim.now))

    def _master_versions(self, index: int, key: str) -> List[RecordVersion]:
        replica_set = self.deployment.replica_sets[index]
        master_name = replica_set.master_element_name
        if master_name is None:
            return []
        return replica_set.copy_on(master_name).store.versions(key)

    @staticmethod
    def _versions_equal(mine: Optional[RecordVersion],
                        theirs: Optional[RecordVersion]) -> bool:
        mine_live = mine is not None and not mine.is_delete
        theirs_live = theirs is not None and not theirs.is_delete
        if not mine_live or not theirs_live:
            return mine_live == theirs_live
        return (mine.commit_seq == theirs.commit_seq
                and mine.value == theirs.value)

    def _channel_for(self, replica_set, slave_name: str):
        for channel in self.deployment.channels:
            if channel.replica_set is replica_set and \
                    channel.slave_element_name == slave_name:
                return channel
        return None

    # -- locator sweep -----------------------------------------------------------

    def _reconcile_locators(self) -> None:
        if self.history is None:
            return
        primary_of_partition = {
            partition: element for element, partition
            in self.deployment.primary_partition_of_element.items()}
        expected: Dict[str, str] = {}
        for index, replica_set in self.deployment.replica_sets.items():
            master_name = replica_set.master_element_name
            element_name = primary_of_partition.get(index)
            if master_name is None or element_name is None:
                continue
            for key in replica_set.copy_on(master_name).store.keys():
                expected[key] = element_name
        for (identity_type, value), key in list(
                self.history.identity_entries()):
            element_name = expected.get(key)
            if element_name is None:
                continue  # record deleted (or not yet visible on a master)
            for locator in self.deployment.locators.values():
                if not isinstance(locator, ProvisionedLocator):
                    continue
                try:
                    located = locator.locate(identity_type, value)
                except UnknownIdentity:
                    located = None
                except LocatorSyncInProgress:
                    continue  # a syncing peer answers nothing reliably yet
                if located == element_name:
                    continue
                self._count("reconciliation.detected")
                locator.register({identity_type: value}, element_name)
                self._count("reconciliation.repaired")
                self._count("reconciliation.locator_repaired")
                self.repairs.append(RepairAction(
                    partition_index=self.deployment
                    .primary_partition_of_element.get(element_name, -1),
                    element_name=element_name,
                    key=f"{identity_type}:{value}",
                    kind="locator_registered", detected_at=self.sim.now))

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.increment(name, amount)

    def __repr__(self) -> str:
        return (f"<Reconciler rounds={self.rounds} "
                f"repairs={len(self.repairs)} running={self._running}>")


def slave_copy_missing_versions(master_chain: List[RecordVersion],
                                floor_seq: int) -> List[RecordVersion]:
    """The suffix of a master version chain a behind slave is missing."""
    return [version for version in master_chain
            if version.commit_seq > floor_seq]
