"""Shim for editable installs with toolchains that predate PEP 660 support.

All metadata lives in ``pyproject.toml``; modern tooling should use
``pip install -e .[dev]``.  Environments whose setuptools lacks the
``wheel`` dependency of the PEP 660 backend can fall back to
``python setup.py develop``.
"""

from setuptools import setup

setup()
