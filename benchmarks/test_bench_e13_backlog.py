"""Bench E13: provisioning backlog and the 30-second batch glitch."""

from repro.experiments import e13_backlog

from benchmarks.conftest import run_experiment


def test_bench_e13_backlog(benchmark):
    result = run_experiment(benchmark, e13_backlog.run)
    assert result.notes["clean_batch_succeeds"]
    assert result.notes["glitch_causes_manual_interventions"]
    assert result.notes["backlog_grows_under_latency"]
