"""Bench E07: scale-out under the three data-location designs."""

from repro.experiments import e07_scaleout

from benchmarks.conftest import run_experiment


def test_bench_e07_scaleout(benchmark):
    result = run_experiment(benchmark, e07_scaleout.run)
    assert result.notes["provisioned_blocks_poa"]
    assert result.notes["alternatives_do_not_block"]
