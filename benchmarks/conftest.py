"""Benchmark harness configuration.

Each benchmark runs one experiment harness exactly once per round (the
experiments are deterministic simulations, not micro-benchmarks), prints the
reproduced table so the run's output can be compared with the paper, and
records the wall-clock cost through pytest-benchmark.
"""

import sys
from pathlib import Path

# Make the src/ layout importable when the package is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_experiment(benchmark, run_callable, *args, **kwargs):
    """Run an experiment once through pytest-benchmark and print its table."""
    result = benchmark.pedantic(run_callable, args=args, kwargs=kwargs,
                                rounds=1, iterations=1)
    print()
    print(result.to_table())
    return result
