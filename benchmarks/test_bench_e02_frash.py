"""Bench E02: figures 5/6 — FRASH links and operating points."""

from repro.experiments import e02_frash

from benchmarks.conftest import run_experiment


def test_bench_e02_frash(benchmark):
    result = run_experiment(benchmark, e02_frash.run)
    assert result.notes["fe_favours_fast"]
    assert result.notes["ps_more_acid_than_fe"]
    assert result.notes["pc_on_partition"]
