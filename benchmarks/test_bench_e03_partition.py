"""Bench E03: FE vs PS availability during a backbone partition."""

from repro.experiments import e03_partition

from benchmarks.conftest import run_experiment


def test_bench_e03_partition(benchmark):
    result = run_experiment(benchmark, e03_partition.run)
    assert result.notes["fe_keeps_working"]
    assert result.notes["ps_mostly_fails"]
