"""Bench E08: selective placement vs random sharding (H-R link)."""

from repro.experiments import e08_placement

from benchmarks.conftest import run_experiment


def test_bench_e08_placement(benchmark):
    result = run_experiment(benchmark, e08_placement.run)
    assert result.notes["backbone_fraction_random"] > \
        result.notes["backbone_fraction_home"]
    assert result.notes["latency_ratio"] > 1.0
