"""Bench E15: batched pipelining throughput vs admission-wave size."""

from repro.experiments import e15_batch_throughput

from benchmarks.conftest import run_experiment


def test_bench_e15_batch_throughput(benchmark):
    result = run_experiment(benchmark, e15_batch_throughput.run)
    # The acceptance bar of the batching PR: >= 1.3x ops/s at the largest
    # wave size, with result codes identical to unbatched execution.
    assert result.notes["largest_batch_size"] == 32
    assert result.notes["meets_1_3x_speedup"]
    assert result.notes["speedup_at_largest_batch"] >= 1.3
    assert result.notes["codes_identical_across_batch_sizes"]
    assert result.notes["all_succeeded"]
    benchmark.extra_info.update(result.notes)
