"""Bench E10: data-location lookup cost (O(log N) vs O(1))."""

from repro.experiments import e10_location_cost

from benchmarks.conftest import run_experiment


def test_bench_e10_location_cost(benchmark):
    result = run_experiment(benchmark, e10_location_cost.run)
    assert result.notes["logarithmic_growth"]
    assert result.notes["weak_link"]
    assert result.notes["cache_fast_path"]
