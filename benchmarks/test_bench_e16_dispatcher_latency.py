"""Bench E16: arrival-driven dispatch, linger budget vs arrival rate."""

from repro.experiments import e16_dispatcher_latency

from benchmarks.conftest import run_experiment


def test_bench_e16_dispatcher_latency(benchmark):
    result = run_experiment(benchmark, e16_dispatcher_latency.run)
    # The acceptance bar of the dispatcher PR: saturated dispatcher
    # throughput within 10% of explicit execute_batch at the same wave
    # size, with result codes identical to sequential execution across the
    # whole sweep.
    assert result.notes["within_10pct_of_explicit"]
    assert result.notes["dispatcher_vs_explicit_ratio"] >= 0.9
    assert result.notes["codes_match_sequential"]
    assert result.notes["linger_helps_at_saturation"]
    benchmark.extra_info.update(result.notes)
