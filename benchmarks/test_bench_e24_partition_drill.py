"""Bench E24: partition drill -- detection, promotion, fencing."""

from repro.experiments import e24_partition_drill

from benchmarks.conftest import run_experiment


def test_bench_e24_partition_drill(benchmark):
    result = run_experiment(benchmark, e24_partition_drill.run)
    # The acceptance bar of the membership/fencing PR: across the seeded
    # sweep of crashes, symmetric and one-way partitions of the master's
    # site, the detector promotes every time...
    assert result.notes["all_drills_promoted"]
    # ...with ZERO split-brain writes and ZERO acked writes lost -- the
    # lease / self-fence / epoch machinery, checked from below by the
    # chaos invariant checker...
    assert result.notes["zero_split_brain"]
    assert result.notes["zero_acked_loss"]
    assert result.notes["no_violations"]
    # ...and unavailability bounded: mastership vacancy within the lease
    # window plus the bounded promotion vote, the client-visible write
    # outage within a retry margin of it.
    assert result.notes["detection_within_bound"]
    assert result.notes["outage_within_bound"]
    # Fencing closes the loop: every deposed master ends its drill fenced
    # at the promotion epoch, and every drill reconverges.
    assert result.notes["all_deposed_fenced"]
    assert result.notes["all_drills_converged"]
    assert result.notes["all_drills_recovered"]
    # The plane observes, it never participates: a fault-free trace with
    # the detector running is bit-identical to the oracle deployment.
    assert result.notes["quiet_plane_bit_identical"]
    benchmark.extra_info.update(result.notes)
