"""Bench E12: PACELC classification of the UDR."""

from repro.experiments import e12_pacelc

from benchmarks.conftest import run_experiment


def test_bench_e12_pacelc(benchmark):
    result = run_experiment(benchmark, e12_pacelc.run)
    assert result.notes["matches_paper"]
