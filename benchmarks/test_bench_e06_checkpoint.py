"""Bench E06: checkpoint period sweep (F-R trade-off)."""

from repro.experiments import e06_checkpoint

from benchmarks.conftest import run_experiment


def test_bench_e06_checkpoint(benchmark):
    result = run_experiment(benchmark, e06_checkpoint.run)
    assert result.notes["sync_commit_slowdown"] > 10
