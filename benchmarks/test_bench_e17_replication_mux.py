"""Bench E17: event-driven replication multiplexing and adaptive lingering."""

from repro.experiments import e17_replication_mux

from benchmarks.conftest import run_experiment


def test_bench_e17_replication_mux(benchmark):
    result = run_experiment(benchmark, e17_replication_mux.run)
    # The acceptance bar of the replication-mux PR: >=5x fewer simulator
    # wakeups and network transfers at equal-or-better replica freshness,
    # with the same records applied -- this is also the wakeup-count
    # regression gate that keeps per-channel polling from silently coming
    # back.
    assert result.notes["wakeup_reduction"] >= 5.0
    assert result.notes["transfer_reduction"] >= 5.0
    assert result.notes["records_applied_equal"]
    assert result.notes["freshness_preserved"]
    # Adaptive lingering must match the best static budget at every e16
    # sweep rate without retuning.
    assert result.notes["adaptive_within_5pct"]
    # E04/E05 semantics are unchanged with the mux enabled.
    assert result.notes["e04_semantics_unchanged"]
    assert result.notes["e05_semantics_unchanged"]
    benchmark.extra_info.update(result.notes)
