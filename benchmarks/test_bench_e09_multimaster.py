"""Bench E09: multi-master divergence and consistency restoration."""

from repro.experiments import e09_multimaster

from benchmarks.conftest import run_experiment


def test_bench_e09_multimaster(benchmark):
    result = run_experiment(benchmark, e09_multimaster.run)
    assert result.notes["writes_available_during_partition"]
    assert result.notes["conflicts_grow_with_divergence"]
