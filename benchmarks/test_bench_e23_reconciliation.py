"""Bench E23: online reconciliation vs silent corruption."""

from repro.experiments import e23_reconciliation

from benchmarks.conftest import run_experiment


def test_bench_e23_reconciliation(benchmark):
    result = run_experiment(benchmark, e23_reconciliation.run)
    # The acceptance bar of the CDC/reconciliation PR: every injected
    # corruption kind (byte flip, locator drop, skipped apply) lands...
    assert result.notes["all_corruptions_applied"]
    # ...and is detected and repaired within the bounded window, under
    # live dispatcher traffic...
    assert result.notes["all_corruptions_repaired"]
    assert result.notes["detection_within_bound"]
    # ...with replicas and locators converged to master state by the end.
    assert result.notes["replicas_converged_after_repair"]
    assert result.notes["locators_converged_after_repair"]
    # The plane is pay-to-arm: the clean reconciling arm repairs nothing
    # and the reconciliation-off arm is bit-identical (PR 7 path).
    assert result.notes["clean_arm_repairs_nothing"]
    assert result.notes["off_arm_bit_identical"]
    # And it is off the serving path: signalling p99 with reconciliation
    # repairing corruption stays within 1.1x the off arm.
    assert result.notes["p99_within_1_1x_off"]
    benchmark.extra_info.update(result.notes)
