"""Bench E01: the section 3.5 capacity table."""

from repro.experiments import e01_capacity

from benchmarks.conftest import run_experiment


def test_bench_e01_capacity(benchmark):
    result = run_experiment(benchmark, e01_capacity.run)
    assert result.notes["within_tolerance"]
