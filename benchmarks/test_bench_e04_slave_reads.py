"""Bench E04: slave reads — latency win vs stale reads."""

from repro.experiments import e04_slave_reads

from benchmarks.conftest import run_experiment


def test_bench_e04_slave_reads(benchmark):
    result = run_experiment(benchmark, e04_slave_reads.run)
    assert result.notes["latency_win_factor"] > 1.5
    assert result.notes["stale_fraction_master_only"] == 0.0
