"""Bench E20: tree-accelerated search -- DIT interval index vs full scan."""

from repro.experiments import e20_search_scaling

from benchmarks.conftest import run_experiment


def test_bench_e20_search_scaling(benchmark):
    # The 10^6 row is dropped here to keep the suite's wall-clock budget;
    # the gate is defined at 10^5 entries anyway.
    result = run_experiment(benchmark, e20_search_scaling.run,
                            sizes=(1_000, 10_000, 100_000),
                            measure_wall_clock=True)
    # The acceptance bar of the DIT-index PR: indexed subtree search at
    # least 10x faster than the brute-force scan at 10^5 entries...
    assert result.notes["speedup_gate_size"] == 100_000
    assert result.notes["speedup_1e5"] >= 10.0
    # ...with every arm returning the brute-force result set bit-identical:
    # the standalone sweep, the end-to-end indexed / paged / scan runs.
    assert result.notes["part_a_sets_equal"]
    assert result.notes["matches_bruteforce"]
    assert result.notes["paged_equals_unpaged"]
    # The paged run really paginated, and both serving paths were exercised.
    assert result.notes["pages"] > 1
    assert result.notes["counter_indexed"] > 0
    assert result.notes["counter_scan"] > 0
    benchmark.extra_info.update(result.notes)
