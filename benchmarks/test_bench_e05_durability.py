"""Bench E05: durability vs latency across replication modes."""

from repro.experiments import e05_durability

from benchmarks.conftest import run_experiment


def test_bench_e05_durability(benchmark):
    result = run_experiment(benchmark, e05_durability.run)
    assert result.notes["async_lost"] > 0, \
        "asynchronous replication loses the un-shipped tail on a crash"
    assert result.notes["dual_lost"] == 0
    assert result.notes["quorum_lost"] == 0
    assert result.notes["dual_latency_penalty"] > 1.0
