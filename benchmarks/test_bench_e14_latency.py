"""Bench E14: index-based single-subscriber read latency vs the 10 ms target."""

from repro.experiments import e14_latency

from benchmarks.conftest import run_experiment


def test_bench_e14_latency(benchmark):
    result = run_experiment(benchmark, e14_latency.run)
    assert result.notes["processing_within_target"]
    assert result.notes["remote_master_mean_ms"] > result.notes["local_mean_ms"]
