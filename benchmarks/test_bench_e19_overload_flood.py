"""Bench E19: overload armor -- quotas + deadlines + shed vs a flood."""

from repro.experiments import e19_overload_flood

from benchmarks.conftest import run_experiment


def test_bench_e19_overload_flood(benchmark):
    result = run_experiment(benchmark, e19_overload_flood.run)
    # The acceptance bar of the overload-armor PR: at a 2x-capacity flood
    # the armored arm's goodput is >= 1.5x the raw (PR 6) arm's...
    assert result.notes["goodput_gain_1_5x"]
    assert result.notes["goodput_gain_at_2x"] >= 1.5
    # ...signalling p99 stays within 1.5x of the uncontended run...
    assert result.notes["sig_p99_within_1_5x_uncontended"]
    # ...no expired ticket is answered later than deadline + one sim tick
    # (the dispatcher's early-wake contract)...
    assert result.notes["expiry_within_one_tick"]
    assert result.notes["late_expiries"] == 0
    # ...and with quota and shed off, sessions are bit-identical to the
    # raw dispatcher path at every load point (armor is pay-to-arm).
    assert result.notes["no_qos_bit_identical_to_raw"]
    # Sustained overload trips shed mode; the quota absorbs most of the
    # 4x flood at the front door.
    assert result.notes["shed_tripped_at_4x"]
    assert result.notes["rejected_fraction_at_4x"] > 0.5
    benchmark.extra_info.update(result.notes)
