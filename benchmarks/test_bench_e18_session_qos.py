"""Bench E18: session QoS -- deadlines + priority under a provisioning flood."""

from repro.experiments import e18_session_qos

from benchmarks.conftest import run_experiment


def test_bench_e18_session_qos(benchmark):
    result = run_experiment(benchmark, e18_session_qos.run)
    # The acceptance bar of the session-API PR: signalling-class p99 under
    # a provisioning flood improves >= 2x with deadline+priority QoS over
    # the undifferentiated legacy path...
    assert result.notes["p99_improved_2x"]
    assert result.notes["signalling_p99_improvement"] >= 2.0
    # ...with the no-QoS session run proving equivalence: identical result
    # codes and identical signalling p99 against the legacy shim on the
    # same seeded trace.
    assert result.notes["no_qos_codes_match_legacy"]
    assert result.notes["no_qos_p99_matches_legacy"]
    # The flood must never take signalling down with it.
    assert result.notes["signalling_all_ok"]
    benchmark.extra_info.update(result.notes)
