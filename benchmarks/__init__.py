"""Benchmark package: one pytest-benchmark module per paper figure/claim."""
