"""Bench E11: availability model vs the five-nines budget."""

from repro.experiments import e11_availability

from benchmarks.conftest import run_experiment


def test_bench_e11_availability(benchmark):
    result = run_experiment(benchmark, e11_availability.run)
    assert result.notes["replication_required"]
