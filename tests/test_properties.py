"""Property-based tests (hypothesis) on the core data structures.

These check the invariants the rest of the system leans on: MVCC visibility,
lock exclusivity, replication-order preservation, identity-map/partition
determinism, consistent-hash stability, DN and filter round-trips, and the
availability arithmetic.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.directory import ConsistentHashRing, IdentityLocationMap, UnknownIdentity
from repro.ldap import DistinguishedName, parse_filter
from repro.metrics import LatencyRecorder
from repro.sim import units
from repro.storage import (
    IsolationLevel,
    PartitionScheme,
    RecordStore,
    RecordVersion,
    TransactionManager,
    WriteAheadLog,
)
from repro.storage.records import merge_attributes, record_size

keys = st.text(alphabet=string.ascii_lowercase + string.digits,
               min_size=1, max_size=12)
attribute_values = st.one_of(st.integers(-1000, 1000), st.booleans(),
                             st.text(max_size=20))
records = st.dictionaries(keys, attribute_values, max_size=6)


class TestStoreProperties:
    @given(st.lists(st.tuples(keys, records), min_size=1, max_size=40))
    def test_latest_committed_version_always_wins(self, writes):
        store = RecordStore()
        last_value = {}
        for seq, (key, value) in enumerate(writes, start=1):
            store.apply_version(RecordVersion(key, value, seq, seq))
            last_value[key] = value
        for key, expected in last_value.items():
            assert store.read_committed(key) == expected

    @given(st.lists(st.tuples(keys, records), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=30))
    def test_snapshot_reads_ignore_later_versions(self, writes, cut):
        store = RecordStore()
        visible = {}
        for seq, (key, value) in enumerate(writes, start=1):
            store.apply_version(RecordVersion(key, value, seq, seq))
            if seq <= cut:
                visible[key] = value
        for key, expected in visible.items():
            assert store.as_of(key, cut) == expected

    @given(st.lists(st.tuples(keys, records), min_size=1, max_size=30))
    def test_snapshot_restore_roundtrip(self, writes):
        store = RecordStore()
        for seq, (key, value) in enumerate(writes, start=1):
            store.apply_version(RecordVersion(key, value, seq, seq))
        image = store.snapshot()
        other = RecordStore()
        other.restore(image, commit_seq=store.last_applied_seq)
        assert {k: other.read_committed(k) for k in other.keys()} == image

    @given(records, records)
    def test_merge_attributes_is_idempotent_and_non_destructive(self, base,
                                                                changes):
        merged_once = merge_attributes(base, changes)
        merged_twice = merge_attributes(merged_once, changes)
        assert merged_once == merged_twice
        for attribute, value in changes.items():
            if value is not None:
                assert merged_once[attribute] == value

    @given(records)
    def test_record_size_is_positive_and_monotonic(self, value):
        size = record_size(value)
        assert size > 0
        grown = dict(value)
        grown["extra-attribute"] = "x" * 50
        assert record_size(grown) > size


class TestTransactionProperties:
    @given(st.lists(st.tuples(keys, records), min_size=1, max_size=25))
    def test_committed_transactions_replay_identically_on_slave(self, writes):
        """Applying the master's log in order yields an identical replica."""
        master = TransactionManager(RecordStore(), WriteAheadLog(), name="m")
        slave = TransactionManager(RecordStore(), WriteAheadLog(), name="s")
        for key, value in writes:
            transaction = master.begin()
            transaction.write(key, value)
            record = transaction.commit()
            slave.apply_log_record(record)
        for key in master.store.keys():
            assert slave.store.read_committed(key) == \
                master.store.read_committed(key)
        assert slave.store.last_applied_seq == master.store.last_applied_seq

    @given(st.lists(st.tuples(keys, records), min_size=1, max_size=20),
           st.booleans())
    def test_aborted_transactions_leave_no_trace(self, writes, use_delete):
        manager = TransactionManager(RecordStore(), WriteAheadLog())
        before_commits = manager.commits
        transaction = manager.begin()
        for key, value in writes:
            transaction.write(key, value)
        if use_delete:
            transaction.delete(writes[0][0])
        transaction.abort()
        assert len(manager.store) == 0
        assert len(manager.wal) == 0
        assert manager.commits == before_commits

    @given(st.lists(keys, min_size=1, max_size=15, unique=True))
    def test_no_two_active_transactions_hold_the_same_write_lock(self, key_list):
        manager = TransactionManager(RecordStore(), WriteAheadLog())
        first = manager.begin(IsolationLevel.READ_COMMITTED)
        for key in key_list:
            first.write(key, {"v": 1})
        second = manager.begin()
        from repro.storage import WriteConflict
        with pytest.raises(WriteConflict):
            second.write(key_list[0], {"v": 2})
        first.commit()


class TestDirectoryProperties:
    @given(st.dictionaries(keys, st.sampled_from(["se-0", "se-1", "se-2"]),
                           min_size=1, max_size=50))
    def test_identity_map_returns_what_was_registered(self, entries):
        index = IdentityLocationMap("imsi")
        for identity, location in entries.items():
            index.insert(identity, location)
        for identity, location in entries.items():
            assert index.locate(identity) == location
        assert len(index) == len(entries)

    @given(st.lists(keys, min_size=1, max_size=50, unique=True))
    def test_identity_map_remove_makes_identity_unknown(self, identities):
        index = IdentityLocationMap("imsi")
        for identity in identities:
            index.insert(identity, "se-0")
        for identity in identities:
            index.remove(identity)
            with pytest.raises(UnknownIdentity):
                index.locate(identity)

    @given(st.lists(keys, min_size=1, max_size=80),
           st.integers(min_value=1, max_value=12))
    def test_partition_scheme_is_deterministic_and_total(self, key_list,
                                                         partitions):
        scheme = PartitionScheme(num_partitions=partitions)
        for key in key_list:
            partition = scheme.partition_for_key(key)
            assert partition is scheme.partition_for_key(key)
            assert 0 <= partition.index < partitions

    @given(st.lists(keys, min_size=5, max_size=60, unique=True))
    @settings(max_examples=25)
    def test_consistent_hash_only_moves_keys_of_removed_node(self, key_list):
        ring = ConsistentHashRing(["se-0", "se-1", "se-2", "se-3"],
                                  virtual_nodes=32)
        before = {key: ring.locate(key) for key in key_list}
        ring.remove_location("se-3")
        after = {key: ring.locate(key) for key in key_list}
        for key in key_list:
            if before[key] != "se-3":
                assert after[key] == before[key]
            else:
                assert after[key] != "se-3"


class TestLdapProperties:
    dn_values = st.text(alphabet=string.ascii_letters + string.digits + " .-",
                        min_size=1, max_size=15).map(str.strip).filter(bool)

    @given(st.lists(st.tuples(st.sampled_from(["imsi", "msisdn", "ou", "dc"]),
                              dn_values), min_size=1, max_size=5))
    def test_dn_parse_format_roundtrip(self, rdns):
        dn = DistinguishedName(rdns)
        assert DistinguishedName.parse(str(dn)) == dn

    # Every escapable character (comma, plus, equals, backslash, semicolon,
    # angle brackets, hash) mixed into otherwise plain values; ``parse``
    # strips surrounding whitespace, so the alphabet stays whitespace-free.
    escapable_values = st.text(
        alphabet=string.ascii_letters + string.digits + ",+=\\;<>#",
        min_size=1, max_size=12)

    @given(st.lists(st.tuples(st.sampled_from(["cn", "ou", "imsi"]),
                              escapable_values), min_size=1, max_size=4))
    def test_dn_roundtrip_with_escapable_characters(self, rdns):
        dn = DistinguishedName(rdns)
        parsed = DistinguishedName.parse(str(dn))
        assert parsed == dn
        assert parsed.leaf_value == rdns[0][1]

    @given(st.lists(st.tuples(st.sampled_from(["cn", "ou", "dc"]),
                              dn_values), min_size=2, max_size=5))
    def test_dn_depth_and_ancestors_consistent(self, rdns):
        dn = DistinguishedName(rdns)
        ancestors = dn.ancestors()
        assert dn.depth == len(rdns)
        assert len(ancestors) == dn.depth - 1
        assert ancestors[0] == dn.parent()
        for ancestor in ancestors:
            assert dn.is_descendant_of(ancestor)
            assert ancestor.depth < dn.depth

    @given(st.dictionaries(st.sampled_from(["imsi", "msisdn", "status"]),
                           st.text(alphabet=string.ascii_lowercase + string.digits,
                                   min_size=1, max_size=10),
                           min_size=1, max_size=3))
    def test_equality_filters_match_their_own_entries(self, entry):
        clauses = "".join(f"({attribute}={value})"
                          for attribute, value in entry.items())
        parsed = parse_filter(f"(&{clauses})" if len(entry) > 1
                              else clauses)
        assert parsed.matches(entry)


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=200))
    def test_percentiles_are_monotonic_and_bounded(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        tolerance = 1e-9
        assert recorder.minimum() <= recorder.median() <= recorder.maximum()
        assert recorder.median() <= recorder.p95() <= recorder.p99() \
            <= recorder.maximum()
        assert recorder.minimum() - tolerance <= recorder.mean() \
            <= recorder.maximum() + tolerance

    @given(st.floats(min_value=0.0, max_value=units.YEAR, allow_nan=False))
    def test_availability_downtime_roundtrip(self, downtime):
        availability = units.availability_from_downtime(downtime)
        assert 0.0 <= availability <= 1.0
        assert units.downtime_budget(availability) == pytest.approx(
            min(downtime, units.YEAR), abs=1e-6)
