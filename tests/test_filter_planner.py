"""Unit tests for the selectivity-ordered conjunctive filter planner."""

import random

from repro.directory import DirectoryCatalog
from repro.ldap.filters import FilterPlanner, parse_filter
from repro.ldap.schema import SubscriberSchema

REGIONS = ("spain", "brazil", "mexico")
ORGS = ("acme", "globex", "initech", "umbrella")
STATUSES = ("active", "suspended")


def _random_catalog(rng, count):
    catalog = DirectoryCatalog(SubscriberSchema.catalog_view,
                               SubscriberSchema.INDEXED_ATTRIBUTES)
    entries = {}
    items = []
    for index in range(count):
        imsi = f"2140700{index:08d}"
        record = {
            "imsi": imsi,
            "homeRegion": rng.choice(REGIONS),
            "organisation": rng.choice(ORGS),
            "subscriberStatus": rng.choice(STATUSES),
        }
        if rng.random() < 0.5:  # presence conjuncts need gaps
            record["currentRegion"] = rng.choice(REGIONS)
        key = f"sub:{imsi}"
        items.append((key, record, index % 3))
        entries[key] = SubscriberSchema.ldap_entry(
            record, SubscriberSchema.subscriber_dn(imsi))
    catalog.bulk_load(items)
    return catalog, entries


class TestPlannerOrdering:
    def test_predicates_sorted_by_estimated_selectivity(self):
        rng = random.Random(11)
        catalog, _ = _random_catalog(rng, 200)
        planner = FilterPlanner(catalog.attributes)
        conjuncts = ["(homeRegion=spain)", "(organisation=acme)",
                     "(subscriberStatus=active)", "(currentRegion=*)"]
        plan = planner.plan(parse_filter("(&" + "".join(conjuncts) + ")"))
        estimates = [predicate.estimate for predicate in plan.predicates]
        assert estimates == sorted(estimates)
        assert plan.indexed

    def test_ordering_stable_under_seeded_shuffles(self):
        rng = random.Random(23)
        catalog, _ = _random_catalog(rng, 300)
        planner = FilterPlanner(catalog.attributes)
        conjuncts = ["(homeRegion=brazil)", "(organisation=globex)",
                     "(subscriberStatus=suspended)", "(currentRegion=*)",
                     "(objectClass=udrSubscriber)"]
        baseline = None
        for shuffle_seed in range(12):
            shuffled = list(conjuncts)
            random.Random(shuffle_seed).shuffle(shuffled)
            plan = planner.plan(parse_filter("(&" + "".join(shuffled) + ")"))
            ordering = [(predicate.attribute, predicate.value)
                        for predicate in plan.predicates]
            if baseline is None:
                baseline = ordering
            # The plan must not depend on how the client spelled the AND.
            assert ordering == baseline

    def test_nested_and_flattened(self):
        rng = random.Random(5)
        catalog, _ = _random_catalog(rng, 100)
        planner = FilterPlanner(catalog.attributes)
        flat = planner.plan(parse_filter(
            "(&(homeRegion=spain)(organisation=acme)"
            "(subscriberStatus=active))"))
        nested = planner.plan(parse_filter(
            "(&(homeRegion=spain)(&(organisation=acme)"
            "(subscriberStatus=active)))"))
        assert [(p.attribute, p.value) for p in nested.predicates] == \
            [(p.attribute, p.value) for p in flat.predicates]

    def test_unindexed_filter_has_no_candidates(self):
        rng = random.Random(3)
        catalog, _ = _random_catalog(rng, 50)
        planner = FilterPlanner(catalog.attributes)
        plan = planner.plan(parse_filter("(servingMsc=msc-1)"))
        assert not plan.indexed
        assert plan.candidates() is None
        # Disjunctions cannot be answered from postings intersections.
        plan = planner.plan(parse_filter(
            "(|(homeRegion=spain)(homeRegion=brazil))"))
        assert plan.candidates() is None


class TestPlannerEquivalence:
    def test_indexed_candidates_superset_of_matches(self):
        """Pruning may overshoot, never undershoot: every brute-force match
        must survive the postings intersection."""
        rng = random.Random(91)
        catalog, entries = _random_catalog(rng, 400)
        planner = FilterPlanner(catalog.attributes)
        filters = [
            "(&(homeRegion=spain)(organisation=acme))",
            "(&(subscriberStatus=active)(currentRegion=*))",
            "(&(objectClass=udrSubscriber)(organisation=umbrella)"
            "(homeRegion=mexico))",
            "(&(homeRegion=brazil)(servingMsc=*))",  # partially indexed
        ]
        for filter_text in filters:
            parsed = parse_filter(filter_text)
            brute = {key for key, entry in entries.items()
                     if parsed.matches(entry)}
            candidates = planner.plan(parsed).candidates()
            assert candidates is not None
            assert brute <= candidates
            # And filtering the candidates gives exactly the brute set.
            assert {key for key in candidates
                    if parsed.matches(entries[key])} == brute

    def test_equivalence_on_randomized_directories(self):
        for seed in (1, 17, 29):
            rng = random.Random(seed)
            catalog, entries = _random_catalog(rng, 150 + seed)
            planner = FilterPlanner(catalog.attributes)
            for _ in range(10):
                region = rng.choice(REGIONS)
                org = rng.choice(ORGS)
                parsed = parse_filter(
                    f"(&(homeRegion={region})(organisation={org}))")
                brute = sorted(key for key, entry in entries.items()
                               if parsed.matches(entry))
                candidates = planner.plan(parsed).candidates()
                indexed = sorted(key for key in candidates
                                 if parsed.matches(entries[key]))
                assert indexed == brute

    def test_empty_intersection_short_circuits(self):
        catalog = DirectoryCatalog(SubscriberSchema.catalog_view,
                                   SubscriberSchema.INDEXED_ATTRIBUTES)
        catalog.bulk_load([
            ("sub:1", {"imsi": "1", "homeRegion": "spain"}, 0),
            ("sub:2", {"imsi": "2", "homeRegion": "brazil"}, 0),
        ])
        planner = FilterPlanner(catalog.attributes)
        plan = planner.plan(parse_filter(
            "(&(homeRegion=spain)(homeRegion=brazil))"))
        assert plan.candidates() == frozenset()
