"""Unit tests for blades, blade clusters, the PoA balancer and SAF manager."""

import pytest

from repro.cluster import (
    AvailabilityManager,
    Blade,
    BladeCluster,
    ClusterLimits,
    ComponentState,
    PointOfAccess,
    ProcessKind,
)
from repro.cluster.balancer import closest_point_of_access
from repro.directory import ProvisionedLocator
from repro.ldap import LdapServerPool
from repro.net import Network, make_multinational_topology
from repro.sim import Simulation, units
from repro.storage import StorageElement


class TestBlade:
    def test_blade_hosts_se_and_ldap_process(self):
        blade = Blade("b0")
        blade.assign(ProcessKind.STORAGE_ELEMENT)
        blade.assign(ProcessKind.LDAP_SERVER)
        assert blade.process_count(ProcessKind.STORAGE_ELEMENT) == 1
        assert blade.process_count(ProcessKind.LDAP_SERVER) == 1

    def test_cpu_budget_enforced(self):
        blade = Blade("b0")
        blade.assign(ProcessKind.LDAP_SERVER)
        assert not blade.can_host(ProcessKind.LDAP_SERVER)
        with pytest.raises(ValueError):
            blade.assign(ProcessKind.LDAP_SERVER)

    def test_ram_budget_enforced(self):
        blade = Blade("b0", ram_bytes=64 * units.GIB)
        assert not blade.can_host(ProcessKind.STORAGE_ELEMENT)

    def test_failed_blade_hosts_nothing(self):
        blade = Blade("b0")
        blade.fail()
        assert not blade.can_host(ProcessKind.PLATFORM)
        blade.repair()
        assert blade.can_host(ProcessKind.PLATFORM)

    def test_release_frees_capacity(self):
        blade = Blade("b0")
        blade.assign(ProcessKind.LDAP_SERVER)
        blade.release(ProcessKind.LDAP_SERVER)
        assert blade.can_host(ProcessKind.LDAP_SERVER)


class TestBladeCluster:
    def test_add_storage_element_consumes_two_blades(self):
        cluster = BladeCluster("c0")
        cluster.add_storage_element(StorageElement("se-0"))
        assert cluster.blade_count() == 2
        assert len(cluster.storage_elements) == 1

    def test_storage_element_limit_enforced(self):
        cluster = BladeCluster("c0", limits=ClusterLimits(max_storage_elements=1))
        cluster.add_storage_element(StorageElement("se-0"))
        with pytest.raises(ValueError):
            cluster.add_storage_element(StorageElement("se-1"))

    def test_ldap_server_limit_enforced(self):
        cluster = BladeCluster("c0", limits=ClusterLimits(max_ldap_servers=2))
        cluster.add_ldap_server()
        cluster.add_ldap_server()
        with pytest.raises(ValueError):
            cluster.add_ldap_server()

    def test_blade_limit_enforced(self):
        cluster = BladeCluster("c0", limits=ClusterLimits(max_blades=2))
        cluster.add_storage_element(StorageElement("se-0"))
        with pytest.raises(ValueError):
            cluster.add_storage_element(StorageElement("se-1"))

    def test_paper_scale_cluster_capacity(self):
        """16 SEs x 2M subscribers and 32 LDAP servers x 1M ops/s per cluster."""
        cluster = BladeCluster("c0")
        for index in range(16):
            cluster.add_storage_element(StorageElement(f"se-{index}"))
        for _ in range(32):
            cluster.add_ldap_server()
        assert cluster.subscriber_capacity == 32_000_000
        assert cluster.ldap_capacity_ops_per_second == 32_000_000

    def test_available_storage_elements_excludes_crashed(self):
        cluster = BladeCluster("c0")
        element = cluster.add_storage_element(StorageElement("se-0"))
        assert cluster.available_storage_elements() == [element]
        element.crash()
        assert cluster.available_storage_elements() == []

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            ClusterLimits(max_blades=0)


class TestPointOfAccess:
    def make_poa(self, site=None, name="poa-0"):
        return PointOfAccess(name, site, LdapServerPool.of_size(name, 2),
                             ProvisionedLocator())

    def test_select_server_round_robin(self):
        poa = self.make_poa()
        first = poa.select_server()
        second = poa.select_server()
        assert first is not second
        assert poa.requests_balanced == 2

    def test_failed_poa_rejects_requests(self):
        poa = self.make_poa()
        poa.fail()
        assert not poa.can_serve()
        with pytest.raises(RuntimeError):
            poa.select_server()
        poa.restore()
        assert poa.can_serve()

    def test_poa_unavailable_while_locator_syncs(self):
        poa = self.make_poa()
        poa.locator.begin_sync(100)
        assert not poa.can_serve()
        poa.locator.complete_sync()
        assert poa.can_serve()

    def test_closest_poa_prefers_same_site(self):
        sim = Simulation(seed=1)
        topology = make_multinational_topology()
        network = Network(sim, topology)
        spain = topology.site("spain-dc1")
        sweden = topology.site("sweden-dc1")
        poas = [self.make_poa(site=sweden, name="poa-sweden"),
                self.make_poa(site=spain, name="poa-spain")]
        chosen = closest_point_of_access(network, spain, poas)
        assert chosen.name == "poa-spain"

    def test_closest_poa_falls_back_to_lowest_latency(self):
        sim = Simulation(seed=1)
        topology = make_multinational_topology()
        network = Network(sim, topology)
        spain2 = topology.site("spain-dc2")
        germany = topology.site("germany-dc1")
        poas = [self.make_poa(site=germany, name="poa-germany"),
                self.make_poa(site=spain2, name="poa-spain2")]
        chosen = closest_point_of_access(network, topology.site("spain-dc1"), poas)
        assert chosen.name == "poa-spain2"

    def test_closest_poa_none_when_unreachable(self):
        sim = Simulation(seed=1)
        topology = make_multinational_topology()
        network = Network(sim, topology)
        spain = topology.site("spain-dc1")
        network.fail_site(topology.site("germany-dc1"))
        poas = [self.make_poa(site=topology.site("germany-dc1"), name="poa-g")]
        assert closest_point_of_access(network, spain, poas) is None


class TestAvailabilityManager:
    def test_failure_and_automatic_repair(self):
        sim = Simulation(seed=1)
        element = StorageElement("se-0")
        manager = AvailabilityManager(sim, default_repair_time=120.0)
        manager.manage("se-0", fail_action=element.crash,
                       repair_action=element.recover)
        manager.fail_component("se-0")
        assert not element.available
        assert manager.component("se-0").state is ComponentState.REPAIRING
        sim.run(until=200.0)
        assert element.available
        assert manager.component("se-0").state is ComponentState.IN_SERVICE
        assert manager.component("se-0").downtime == pytest.approx(120.0)

    def test_availability_accounting(self):
        sim = Simulation(seed=1)
        element = StorageElement("se-0")
        manager = AvailabilityManager(sim, default_repair_time=60.0)
        manager.manage("se-0", element.crash, element.recover)
        manager.fail_component("se-0")
        sim.run()
        availability = manager.availability_of("se-0",
                                                observation_period=6000.0)
        assert availability == pytest.approx(1 - 60.0 / 6000.0)

    def test_duplicate_registration_rejected(self):
        sim = Simulation(seed=1)
        manager = AvailabilityManager(sim)
        manager.manage("x", lambda: None, lambda: None)
        with pytest.raises(ValueError):
            manager.manage("x", lambda: None, lambda: None)

    def test_double_failure_is_ignored(self):
        sim = Simulation(seed=1)
        element = StorageElement("se-0")
        manager = AvailabilityManager(sim, default_repair_time=10.0)
        manager.manage("se-0", element.crash, element.recover)
        manager.fail_component("se-0")
        manager.fail_component("se-0")
        assert manager.component("se-0").failures == 1

    def test_manual_repair_without_auto(self):
        sim = Simulation(seed=1)
        element = StorageElement("se-0")
        manager = AvailabilityManager(sim)
        manager.manage("se-0", element.crash, element.recover)
        manager.fail_component("se-0", auto_repair=False)
        sim.run()
        assert not element.available
        manager.repair_component("se-0")
        assert element.available

    def test_invalid_observation_period(self):
        sim = Simulation(seed=1)
        manager = AvailabilityManager(sim)
        manager.manage("x", lambda: None, lambda: None)
        with pytest.raises(ValueError):
            manager.availability_of("x", observation_period=0.0)
