"""PR 7's overload armor: admission quotas, deadline waking, shed mode.

Five suites pin the control loop down:

* **token-bucket admission** -- ``QoSProfile.rate_limit`` answers over-quota
  work ``BUSY`` at submit (an already-settled future, zero queue/pipeline
  work), refills with virtual time, and counts rejections per operation but
  throttle *episodes* once per transition;
* **expiry accounting** -- a ticket expiring in the dispatch queue records
  its queue time into the ``dispatcher.linger`` histogram and its failure
  under the submitting client's ``api.client.<name>.failed`` scope exactly
  once (the late-expiry bug family);
* **early wake** -- a queued ticket whose QoS deadline precedes the frozen
  linger deadline is answered ``TIME_LIMIT_EXCEEDED`` *at* its deadline,
  with no further arrivals needed, on both the grouped-source and the
  direct-ticket paths;
* **timeout hygiene / retry accounting** -- waves filling before their
  linger deadline cancel the armed timeout (the event heap stays bounded
  under a saturation soak), and a deadline-refused retry still reports the
  attempt it ran;
* **shed mode** -- EWMA trip/clear hysteresis, slave reads for master-only
  client types while shedding, and bulk deferral that never starves.
"""

import pytest

from repro.api import QoSProfile, Read
from repro.core import (
    ClientType,
    DispatchMode,
    Priority,
    RateLimit,
    RetryPolicy,
    ShedPolicy,
    UDRConfig,
)
from repro.core.dispatcher import DispatchTicket, ShedController
from repro.core.pipeline import (
    BATCH_LINGER_TICK,
    BatchItem,
    OperationContext,
    OperationFailure,
)
from repro.ldap.operations import ResultCode

from tests.conftest import build_udr, run_to_completion


def read_request(profile):
    return Read(profile.identities.imsi).to_request()


# ------------------------------------------------- token-bucket admission

class TestTokenBucketAdmission:
    def test_over_quota_is_answered_busy_immediately(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach(
            "fe-quota", udr.topology.sites[0],
            qos=QoSProfile(rate_limit=RateLimit(rate_per_second=10.0,
                                                burst=2)))
        session = client.session()
        operation = Read(profiles[0].identities.imsi)
        admitted = [session.submit(operation), session.submit(operation)]
        rejected = session.submit(operation)
        # The rejection is synchronous: no simulation time ran yet.
        assert rejected.done
        response = rejected.result()
        assert response.result_code is ResultCode.BUSY
        assert response.latency == 0.0
        assert "admission quota" in response.diagnostic_message
        assert udr.metrics.counter("api.admission.rejected") == 1
        assert udr.metrics.counter("api.client.fe-quota.rejected") == 1
        for future in admitted:
            assert run_to_completion(udr, future.wait()).ok

    def test_bucket_refills_with_virtual_time(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach(
            "fe-refill", udr.topology.sites[0],
            qos=QoSProfile(rate_limit=RateLimit(rate_per_second=100.0,
                                                burst=1)))
        session = client.session()
        operation = Read(profiles[0].identities.imsi)
        first = session.submit(operation)
        assert session.submit(operation).result().result_code \
            is ResultCode.BUSY
        run_to_completion(udr, first.wait())
        udr.sim.run_for(0.05)  # 100/s refills the single-token bucket
        refilled = session.submit(operation)
        assert not refilled.done, "admitted, not answered at submit"
        assert run_to_completion(udr, refilled.wait()).ok
        assert udr.metrics.counter("api.admission.rejected") == 1

    def test_throttling_counts_episodes_not_rejections(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach(
            "fe-episodes", udr.topology.sites[0],
            qos=QoSProfile(rate_limit=RateLimit(rate_per_second=100.0,
                                                burst=1)))
        session = client.session()
        operation = Read(profiles[0].identities.imsi)
        first = session.submit(operation)
        session.submit(operation)
        session.submit(operation)
        assert udr.metrics.counter("api.admission.rejected") == 2
        assert udr.metrics.counter("api.admission.throttled") == 1, \
            "one episode, however many rejections it spans"
        run_to_completion(udr, first.wait())
        udr.sim.run_for(0.05)
        admitted = session.submit(operation)   # leaves the episode
        session.submit(operation)              # enters a second one
        assert udr.metrics.counter("api.admission.throttled") == 2
        assert run_to_completion(udr, admitted.wait()).ok

    def test_rejected_work_never_reaches_the_dispatcher(self):
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_linger_ticks=2)
        udr, profiles = build_udr(config, subscribers=8)
        client = udr.attach(
            "fe-gate", udr.topology.sites[0],
            qos=QoSProfile(rate_limit=RateLimit(rate_per_second=10.0,
                                                burst=1)))
        session = client.session()
        operation = Read(profiles[0].identities.imsi)
        admitted = session.submit(operation)
        rejected = session.submit(operation)
        assert rejected.result().result_code is ResultCode.BUSY
        assert udr.metrics.counter("dispatcher.enqueued") == 1, \
            "the over-quota operation never joined the queue"
        assert run_to_completion(udr, admitted.wait()).ok

    def test_without_rate_limit_admission_is_inert(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach("fe-plain", udr.topology.sites[0])
        session = client.session()
        for _ in range(3):
            run_to_completion(
                udr, session.call(Read(profiles[0].identities.imsi)))
        assert client._bucket_tokens is None, "no bucket was ever created"
        assert udr.metrics.counter("api.admission.rejected") == 0
        assert udr.metrics.counter("api.admission.throttled") == 0


# --------------------------------------------------- expiry accounting

class TestExpiryAccounting:
    def test_queue_expiry_records_linger_and_client_failure_once(self):
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_linger_ticks=1000)
        udr, profiles = build_udr(config, subscribers=8)
        client = udr.attach("fe-exp", udr.topology.sites[0],
                            qos=QoSProfile(deadline_ticks=10))
        future = client.session().submit(Read(profiles[0].identities.imsi))
        response = run_to_completion(udr, future.wait())
        assert response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        linger = udr.metrics.latency("dispatcher.linger")
        assert linger.count == 1, \
            "the expired ticket's queue time reached the linger histogram"
        assert linger.mean() == pytest.approx(10 * BATCH_LINGER_TICK,
                                              abs=1e-6)
        # Counted once: by the dispatcher at expiry (it knows the source
        # tag), and *not* again when the session settles the future.
        assert udr.metrics.counter("api.client.fe-exp.failed") == 1
        assert udr.metrics.latency("api.client.fe-exp.latency").count == 1

    def test_direct_ticket_expiry_records_linger_only(self):
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_linger_ticks=1000)
        udr, profiles = build_udr(config, subscribers=8)
        ticket = udr.dispatcher.submit(
            read_request(profiles[0]), ClientType.APPLICATION_FE,
            udr.topology.sites[0], deadline=udr.sim.now + 0.01)

        def wait():
            yield ticket.event

        run_to_completion(udr, wait())
        assert ticket.response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        assert ticket.expired_in_queue
        assert udr.metrics.latency("dispatcher.linger").count == 1
        assert udr.metrics.counter("dispatcher.deadline_expired") == 1
        # No source tag: nothing lands in any per-client scope.
        assert udr.metrics.counters_with_prefix("api.client.") == {}


# ----------------------------------------------------------- early wake

class TestEarlyWakeExpiry:
    """A deadline earlier than the frozen linger deadline is honoured at
    the deadline itself -- no later arrival, wave or linger expiry needed."""

    LINGER_TICKS = 2000  # 2 s: far past every deadline used below

    def _config(self):
        return UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                         batch_linger_ticks=self.LINGER_TICKS)

    def test_sessioned_ticket_expires_at_its_deadline(self):
        udr, profiles = build_udr(self._config(), subscribers=8)
        client = udr.attach("fe-wake", udr.topology.sites[0],
                            qos=QoSProfile(deadline_ticks=50))
        future = client.session().submit(Read(profiles[0].identities.imsi))
        response = run_to_completion(udr, future.wait())
        assert response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        assert future.completed_at == pytest.approx(future.deadline,
                                                    abs=1e-6)
        assert future.completed_at < self.LINGER_TICKS * BATCH_LINGER_TICK, \
            "answered long before the linger deadline would have fired"

    def test_direct_ticket_expires_at_its_deadline(self):
        udr, profiles = build_udr(self._config(), subscribers=8)
        deadline = udr.sim.now + 0.03
        ticket = udr.dispatcher.submit(
            read_request(profiles[0]), ClientType.APPLICATION_FE,
            udr.topology.sites[0], deadline=deadline)

        def wait():
            yield ticket.event

        run_to_completion(udr, wait())
        assert ticket.response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        assert ticket.completed_at == pytest.approx(deadline, abs=1e-6)

    def test_each_deadline_gets_its_own_wake(self):
        udr, profiles = build_udr(self._config(), subscribers=8)
        site = udr.topology.sites[0]
        first_deadline = udr.sim.now + 0.03
        second_deadline = udr.sim.now + 0.06
        first = udr.dispatcher.submit(
            read_request(profiles[0]), ClientType.APPLICATION_FE, site,
            deadline=first_deadline)
        second = udr.dispatcher.submit(
            read_request(profiles[0]), ClientType.APPLICATION_FE, site,
            deadline=second_deadline)

        def wait():
            yield first.event
            yield second.event

        run_to_completion(udr, wait())
        assert first.completed_at == pytest.approx(first_deadline, abs=1e-6)
        assert second.completed_at == pytest.approx(second_deadline,
                                                    abs=1e-6), \
            "the loop re-armed its wake for the next deadline"


# ------------------------------------------------------ retry accounting

class TestRetryAccounting:
    """The ``pending_failure`` entry path of the RetryStage: a retryable
    failure handed in by the batch machinery whose backoff no longer fits
    the deadline must still report the attempt that already ran."""

    def _context(self, udr, profiles, policy, deadline):
        return OperationContext(
            read_request(profiles[0]), ClientType.APPLICATION_FE,
            udr.topology.sites[0], udr.sim.now,
            deadline=deadline, retry_policy=policy)

    def test_deadline_refused_retry_still_counts_its_attempt(self):
        udr, profiles = build_udr(subscribers=8)
        policy = RetryPolicy(max_retries=3, backoff_tick=0.05)
        ctx = self._context(udr, profiles, policy,
                            deadline=udr.sim.now + 0.02)
        failure = OperationFailure(ResultCode.UNAVAILABLE, "copy down",
                                   retryable=True)
        stage = udr.pipeline.retry_stage.run(ctx, pending_failure=failure)
        with pytest.raises(OperationFailure) as refused:
            next(stage)
        assert refused.value.code is ResultCode.TIME_LIMIT_EXCEEDED
        assert "before retry" in refused.value.reason
        assert ctx.attempts == 1, \
            "the attempt that produced the pending failure ran and counts"

    def test_non_retryable_pending_failure_keeps_its_code(self):
        udr, profiles = build_udr(subscribers=8)
        policy = RetryPolicy(max_retries=3, backoff_tick=0.05)
        ctx = self._context(udr, profiles, policy,
                            deadline=udr.sim.now + 0.02)
        failure = OperationFailure(ResultCode.NO_SUCH_OBJECT, "not found",
                                   retryable=False)
        stage = udr.pipeline.retry_stage.run(ctx, pending_failure=failure)
        with pytest.raises(OperationFailure) as surfaced:
            next(stage)
        assert surfaced.value.code is ResultCode.NO_SUCH_OBJECT
        assert ctx.attempts == 0, "nothing was retried"


# ------------------------------------------------------- timeout hygiene

class TestTimeoutHeapHygiene:
    def test_filled_waves_cancel_their_linger_timeouts(self):
        """Saturation soak: every wave fills before its (far-future) linger
        deadline, so every armed timeout is abandoned.  Cancellation plus
        heap compaction must keep the event heap bounded instead of letting
        one dead timeout per wave accumulate until its fire time."""
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_max_size=4, batch_linger_ticks=100_000)
        udr, profiles = build_udr(config, subscribers=8)
        site = udr.topology.sites[0]
        request = read_request(profiles[0])
        waves = 120
        heap_sizes = []

        def soak():
            for _ in range(waves):
                tickets = [udr.dispatcher.submit(
                    request, ClientType.APPLICATION_FE, site)
                    for _ in range(2)]
                # Let the loop wake and arm the linger timeout...
                yield udr.sim.timeout(0.0001)
                # ...then fill the wave, which must cancel it.
                tickets += [udr.dispatcher.submit(
                    request, ClientType.APPLICATION_FE, site)
                    for _ in range(2)]
                yield udr.sim.all_of([t.event for t in tickets])
                heap_sizes.append(len(udr.sim._queue))

        run_to_completion(udr, soak())
        assert udr.metrics.counter("dispatcher.dispatched") == 4 * waves
        assert udr.metrics.counter("dispatcher.waves_full") == waves
        assert max(heap_sizes) < 80, \
            f"event heap grew to {max(heap_sizes)} under saturation"
        stale = sum(1 for entry in udr.sim._queue if entry[3].cancelled)
        assert stale < 70, f"{stale} dead timeouts left in the heap"


# -------------------------------------------------------------- shed mode

class TestShedMode:
    def test_controller_trip_clear_hysteresis(self):
        udr, _profiles = build_udr(subscribers=8)
        policy = ShedPolicy(alpha=1.0, trip_depth=4.0, clear_depth=1.0)
        controller = ShedController(policy, udr.pipeline, udr.metrics)
        controller.observe(5)
        assert controller.active and udr.pipeline.shed_active
        assert udr.metrics.counter("dispatcher.shed.activations") == 1
        assert udr.metrics.gauge("dispatcher.shed.active") == 1
        controller.observe(3)  # between clear and trip: no chatter
        assert controller.active
        controller.observe(0)
        assert not controller.active and not udr.pipeline.shed_active
        assert udr.metrics.gauge("dispatcher.shed.active") == 0
        controller.observe(2)  # below trip: stays clear
        assert not controller.active
        controller.observe(6)
        assert controller.active
        assert udr.metrics.counter("dispatcher.shed.activations") == 2

    def test_shed_serves_master_only_reads_from_slave(self):
        udr, profiles = build_udr(subscribers=8)
        profile = profiles[0]
        element = udr.deployment.authoritative_lookup(
            "imsi", profile.identities.imsi)
        replica_set = udr.deployment.replica_set_of_element(element)
        master = replica_set.master_element_name
        udr.crash_element(master)
        site = udr.topology.sites[0]
        operation = Read(profile.identities.imsi)
        # PROVISIONING reads are master-only: with the master down and no
        # shed, the read has no copy it may use.
        baseline = run_to_completion(
            udr, udr.attach("ps-a", site,
                            client_type=ClientType.PROVISIONING)
            .session().call(operation))
        assert baseline.result_code is ResultCode.UNAVAILABLE
        udr.pipeline.shed_active = True
        shed = run_to_completion(
            udr, udr.attach("ps-b", site,
                            client_type=ClientType.PROVISIONING)
            .session().call(operation))
        assert shed.ok
        assert shed.served_from != master, "served by a slave copy"
        udr.flush_metrics()
        assert udr.metrics.counter("dispatcher.shed.slave_reads") >= 1

    def test_shed_defers_bulk_but_never_drops_it(self):
        config = UDRConfig(
            dispatch_mode=DispatchMode.DISPATCHER, batch_max_size=4,
            batch_linger_ticks=5,
            shed_policy=ShedPolicy(alpha=1.0, trip_depth=1e9,
                                   clear_depth=0.0))
        udr, profiles = build_udr(config, subscribers=8)
        site = udr.topology.sites[0]
        request = read_request(profiles[0])
        # Force the mode (the huge trip depth keeps observations inert).
        udr.dispatcher.shed.active = True
        udr.dispatcher.shed.ewma = 1e12
        udr.pipeline.shed_active = True
        live = [udr.dispatcher.submit(request, ClientType.APPLICATION_FE,
                                      site) for _ in range(2)]
        bulk = [udr.dispatcher.submit(request, ClientType.APPLICATION_FE,
                                      site, priority=Priority.BULK)
                for _ in range(2)]

        def wait():
            yield udr.sim.all_of([t.event for t in live + bulk])

        run_to_completion(udr, wait())
        assert udr.metrics.counter("dispatcher.shed.bulk_deferred") == 2
        assert all(t.response.ok for t in live + bulk), \
            "deferred bulk work was dispatched later, never dropped"
        assert max(t.completed_at for t in live) < \
            min(t.completed_at for t in bulk), \
            "the live wave went out first; bulk followed in its own wave"

    def test_sustained_queue_trips_and_draining_clears(self):
        config = UDRConfig(
            dispatch_mode=DispatchMode.DISPATCHER, batch_max_size=8,
            batch_linger_ticks=1,
            shed_policy=ShedPolicy(alpha=0.5, trip_depth=8.0,
                                   clear_depth=2.0))
        udr, profiles = build_udr(config, subscribers=8)
        site = udr.topology.sites[0]
        request = read_request(profiles[0])
        flood = [udr.dispatcher.submit(request, ClientType.APPLICATION_FE,
                                       site) for _ in range(40)]
        assert udr.dispatcher.shed.active, \
            "the standing queue tripped the EWMA"
        assert udr.metrics.counter("dispatcher.shed.activations") == 1

        def drain(tickets):
            yield udr.sim.all_of([t.event for t in tickets])

        run_to_completion(udr, drain(flood))
        # Trickle traffic: each lone arrival and each emptied-queue wave
        # observation decays the EWMA below the clear threshold.
        for _ in range(8):
            trickle = udr.dispatcher.submit(
                request, ClientType.APPLICATION_FE, site)
            run_to_completion(udr, drain([trickle]))
        assert not udr.dispatcher.shed.active
        assert not udr.pipeline.shed_active
        assert udr.metrics.gauge("dispatcher.shed.active") == 0
        assert udr.metrics.counter("dispatcher.shed.activations") == 1, \
            "clearing did not re-trip"


# -------------------------------------------------- slack-aware ordering

class TestSlackAwareOrdering:
    def _ticket(self, udr, profiles, priority=None, deadline=None):
        item = BatchItem(read_request(profiles[0]),
                         ClientType.APPLICATION_FE,
                         udr.topology.sites[0], priority=priority,
                         deadline=deadline)
        return DispatchTicket(item, 0.0, None, source="test")

    def test_within_class_earlier_deadline_goes_first(self):
        udr, profiles = build_udr(subscribers=8)
        tickets = [self._ticket(udr, profiles, deadline=None),
                   self._ticket(udr, profiles, deadline=0.5),
                   self._ticket(udr, profiles, deadline=0.1)]
        ordered = udr.pipeline.batch_admission.order(tickets)
        assert [t.item.deadline for t in ordered] == [0.1, 0.5, None], \
            "tightest slack first; deadline-free work at the class's back"

    def test_without_deadlines_order_is_the_pr6_round_robin(self):
        udr, profiles = build_udr(subscribers=8)
        tickets = [self._ticket(udr, profiles,
                                priority=[None, Priority.BULK,
                                          Priority.PROVISIONING][i % 3])
                   for i in range(9)]
        ordered = udr.pipeline.batch_admission.order(tickets)
        # The sort key ties everywhere and the sort is stable, so each
        # class's subsequence keeps its FIFO arrival order -- bit-identical
        # to the PR 6 weighted round-robin.
        for priority in Priority:
            expected = [t for t in tickets
                        if t.item.priority_class() is priority]
            got = [t for t in ordered
                   if t.item.priority_class() is priority]
            assert got == expected
