"""Tests for the experiment harnesses: each reproduces its paper claim.

The benchmarks under ``benchmarks/`` time the same harnesses; these tests
assert the *direction* of every result (who wins, what fails, what grows), so
a regression in any substrate shows up here as a broken paper claim.
"""

import pytest

from repro.core import CapacityModel, PartitionPolicy
from repro.experiments import (
    e01_capacity,
    e02_frash,
    e03_partition,
    e04_slave_reads,
    e05_durability,
    e06_checkpoint,
    e07_scaleout,
    e08_placement,
    e09_multimaster,
    e10_location_cost,
    e11_availability,
    e12_pacelc,
    e13_backlog,
    e14_latency,
    e15_batch_throughput,
    e20_search_scaling,
)
from repro.experiments.runner import ExperimentResult


class TestResultContainer:
    def test_to_table_and_markdown(self):
        result = ExperimentResult(
            experiment_id="EXX", title="demo", paper_claim="claim",
            headers=["a", "b"], rows=[[1, 2]], finding="measured")
        table = result.to_table()
        assert "EXX" in table and "claim" in table and "measured" in table
        markdown = result.to_markdown()
        assert markdown.startswith("### EXX")
        assert result.row_dicts() == [{"a": 1, "b": 2}]


class TestAnalyticExperiments:
    def test_e01_capacity_matches_paper(self):
        result = e01_capacity.run()
        assert result.notes["within_tolerance"]
        figures = {row[0]: row for row in result.rows}
        assert figures["total_subscribers"][1] == 512_000_000

    def test_e01_with_custom_model(self):
        result = e01_capacity.run(CapacityModel(subscribers_per_element=4_000_000))
        figures = {row[0]: row for row in result.rows}
        assert figures["total_subscribers"][2] == 1_024_000_000

    def test_e02_frash_directions(self):
        result = e02_frash.run()
        assert result.notes["fe_favours_fast"]
        assert result.notes["ps_more_acid_than_fe"]
        assert result.notes["pc_on_partition"]
        assert len(result.rows) == 8, "all figure-5 links reported"

    def test_e06_checkpoint_sweep(self):
        result = e06_checkpoint.run()
        assert result.notes["sync_commit_slowdown"] > 10
        penalties = [row[1] for row in result.rows[:-1]]
        assert penalties == sorted(penalties, reverse=True), \
            "shorter dump periods cost more throughput"

    def test_e10_location_cost_growth(self):
        result = e10_location_cost.run(population_sizes=(1_000, 100_000),
                                       lookups_per_size=50)
        assert result.notes["logarithmic_growth"]
        assert result.notes["weak_link"]

    def test_e11_availability_needs_replication(self):
        result = e11_availability.run(simulate=False)
        assert result.notes["replication_required"]

    def test_e12_pacelc_matches_paper(self):
        result = e12_pacelc.run()
        assert result.notes["matches_paper"]
        rows = {row[0]: row for row in result.rows}
        assert rows["paper default"][1] == "PA/EL"
        assert rows["paper default"][2] == "PC/EC"
        assert rows["multi-master on partition"][2].startswith("PA")


class TestSimulationExperiments:
    def test_e03_partition_dichotomy(self):
        result = e03_partition.run(subscribers=30, operations=16, seed=3)
        assert result.notes["fe_keeps_working"]
        assert result.notes["ps_mostly_fails"]

    def test_e03_multimaster_keeps_provisioning_alive(self):
        result = e03_partition.run(
            partition_policy=PartitionPolicy.PREFER_AVAILABILITY,
            subscribers=30, operations=16, seed=3)
        assert result.notes["ps_partition_availability"] > 0.5

    def test_e04_slave_reads_faster_but_stale(self):
        result = e04_slave_reads.run(subscribers=20, operations=20, seed=5)
        assert result.notes["latency_win_factor"] > 1.5
        assert result.notes["stale_fraction_master_only"] == 0.0
        assert result.notes["stale_fraction_with_slaves"] >= 0.0

    def test_e05_durability_ordering(self):
        result = e05_durability.run(writes=12, seed=5)
        assert result.notes["async_lost"] > 0
        assert result.notes["dual_lost"] == 0
        assert result.notes["quorum_lost"] == 0
        assert result.notes["dual_latency_penalty"] > 1.0

    def test_e07_scaleout_only_provisioned_blocks(self):
        result = e07_scaleout.run(subscribers=30, seed=5)
        assert result.notes["provisioned_blocks_poa"]
        assert result.notes["alternatives_do_not_block"]
        assert result.notes["projected_sync_seconds"] > 1.0

    def test_e08_placement_backbone_fraction(self):
        result = e08_placement.run(subscribers=30, operations=30, seed=5)
        assert result.notes["backbone_fraction_random"] > \
            result.notes["backbone_fraction_home"]

    def test_e09_multimaster_divergence(self):
        result = e09_multimaster.run(seed=5)
        assert result.notes["writes_available_during_partition"]
        assert result.notes["conflicts_grow_with_divergence"]

    def test_e13_backlog_and_glitch(self):
        result = e13_backlog.run(operations=20, batch_size=20, seed=5)
        assert result.notes["clean_batch_succeeds"]
        assert result.notes["glitch_causes_manual_interventions"]
        assert result.notes["backlog_grows_under_latency"]

    def test_e14_latency_budget(self):
        result = e14_latency.run(subscribers=20, operations=30, seed=5)
        assert result.notes["processing_within_target"]
        assert result.notes["remote_master_mean_ms"] > \
            result.notes["local_mean_ms"]

    def test_e15_batch_throughput_speedup(self):
        result = e15_batch_throughput.run(batch_sizes=(1, 16), operations=64,
                                          seed=5)
        assert result.notes["speedup_at_largest_batch"] >= 1.3
        assert result.notes["codes_identical_across_batch_sizes"]
        assert result.notes["all_succeeded"]

    def test_e20_search_scaling_directions(self):
        result = e20_search_scaling.run(sizes=(1_000, 5_000), subscribers=30,
                                        seed=5)
        # Deterministic mode: the cost-model prune ratio, not wall clock.
        assert result.notes["speedup_1e5"] >= 10.0
        assert result.notes["part_a_sets_equal"]
        assert result.notes["matches_bruteforce"]
        assert result.notes["paged_equals_unpaged"]
        assert result.notes["pages"] > 1
        assert result.notes["counter_indexed"] > 0
        assert result.notes["counter_scan"] > 0
        assert result.notes["counter_relabels"] > 0
