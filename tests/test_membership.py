"""Membership plane: lease detection, quorum promotion, epoch fencing.

The split-brain matrix PR 9 pins, one suite per layer:

* **policy** -- validation and quorum derivation;
* **detection** -- a crashed master, a symmetrically isolated one and a
  one-way (asymmetric) cut all promote within the lease-plus-vote bound,
  while an isolated observer's suspicions stay *link* suspicions that
  never trigger a promotion, and a blip shorter than the lease window
  changes nothing;
* **fencing** -- the deposed master is fenced *before* every
  detector-triggered promotion (the self-fence ordering), a fenced copy
  answers ``FENCED`` (a retryable code), epochs advance monotonically,
  and a healed deposed master rejoins as a fenced, resynchronised slave;
* **oracle inertness** -- ``membership=None`` builds no plane, stamps no
  epochs and produces no ``FENCED`` codes: the PR 8 oracle path, bit for
  bit (two identical faulted runs produce identical codes and state).
"""

import pytest

from repro.api.operations import Read, Write
from repro.cluster import MembershipPlane, PromotionRecord
from repro.core import ClientType, UDRConfig
from repro.core.config import MembershipPolicy, RetryPolicy
from repro.ldap.operations import ResultCode
from repro.net import NetworkPartition

from tests.conftest import build_udr, fe_site_for, run_to_completion

HEARTBEAT = 0.1
LEASE_TICKS = 3
#: Mastership vacancy bound: tick alignment + lease window + bounded vote
#: (+ one heartbeat of coordinator poll grid).
BOUND = (LEASE_TICKS + 1) * HEARTBEAT + \
    MembershipPolicy().vote_timeout + HEARTBEAT


def membership_udr(seed=7, subscribers=24, **policy):
    policy.setdefault("heartbeat_interval", HEARTBEAT)
    policy.setdefault("lease_ticks", LEASE_TICKS)
    config = UDRConfig(seed=seed, membership=MembershipPolicy(**policy))
    return build_udr(config, subscribers=subscribers)


def master_of(udr, index=0):
    replica_set = udr.replica_sets[index]
    master = replica_set.master_element_name
    return replica_set, master, udr.elements[master].site


def keyed_partition(udr, profile):
    """The partition index mastering ``profile``'s record."""
    key = f"sub:{profile.identities.imsi}"
    for index, replica_set in udr.replica_sets.items():
        master = replica_set.master_element_name
        if key in replica_set.copy_on(master).store.keys():
            return index
    pytest.fail("profile record on no master store")


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MembershipPolicy(heartbeat_interval=0)
        with pytest.raises(ValueError):
            MembershipPolicy(lease_ticks=0)
        with pytest.raises(ValueError):
            MembershipPolicy(quorum=0)
        with pytest.raises(ValueError):
            MembershipPolicy(vote_timeout=0)

    def test_quorum_is_a_strict_majority_by_default(self):
        policy = MembershipPolicy()
        assert policy.quorum_for(3) == 2
        assert policy.quorum_for(4) == 3
        assert policy.quorum_for(5) == 3

    def test_explicit_quorum_is_capped_at_the_site_count(self):
        assert MembershipPolicy(quorum=5).quorum_for(3) == 3

    def test_plane_is_built_only_when_configured(self):
        udr, _ = membership_udr()
        assert isinstance(udr.membership, MembershipPlane)
        assert udr.controller.membership is udr.membership.protocol
        off, _ = build_udr(UDRConfig(seed=7), subscribers=12)
        assert off.membership is None
        assert off.controller.membership is None


class TestDetection:
    def test_crashed_master_is_promoted_within_the_bound(self):
        udr, _ = membership_udr()
        replica_set, master, _ = master_of(udr)
        crash_at = udr.sim.now + 0.5
        udr.sim.run(until=crash_at)
        udr.crash_element(master)
        udr.sim.run(until=crash_at + 2.0)
        records = [record for record in udr.membership.history
                   if record.old_master == master]
        assert records, "no promotion after master crash"
        assert records[0].trigger == "detector"
        assert records[0].at - crash_at <= BOUND
        assert replica_set.master_element_name != master

    def test_partitioned_master_self_fences_then_is_promoted(self):
        udr, _ = membership_udr()
        replica_set, master, master_site = master_of(udr)
        partition = NetworkPartition.isolating(master_site)
        udr.sim.run(until=udr.sim.now + 0.5)
        fault_at = udr.sim.now
        udr.network.apply_partition(partition)
        udr.sim.run(until=fault_at + 2.0)
        assert udr.membership.stats.self_fences >= 1
        records = [record for record in udr.membership.history
                   if record.old_master == master]
        assert records and records[0].at - fault_at <= BOUND
        # The ordering proof: by the time the quorum promoted, the deposed
        # master had already stopped accepting writes.
        assert all(record.old_master_fenced for record in records)

    def test_one_way_cut_is_detected_like_a_partition(self):
        """Crash-vs-partition ambiguity: the master can still be heard
        from, yet cannot be probed -- promotion must still happen."""
        udr, _ = membership_udr()
        _, master, master_site = master_of(udr)
        udr.sim.run(until=udr.sim.now + 0.5)
        fault_at = udr.sim.now
        udr.network.apply_partition(NetworkPartition.one_way(master_site))
        udr.sim.run(until=fault_at + 2.0)
        records = [record for record in udr.membership.history
                   if record.old_master == master]
        assert records and records[0].at - fault_at <= BOUND
        assert udr.membership.stats.self_fences >= 1

    def test_isolated_observer_suspects_links_not_elements(self):
        """A minority-side site's suspicions never promote anyone else's
        masters: every promotion a partition causes deposes a master
        *behind* the cut, none in front of it."""
        udr, _ = membership_udr()
        cut_site = udr.topology.sites[0]
        udr.sim.run(until=udr.sim.now + 0.5)
        udr.network.apply_partition(NetworkPartition.isolating(cut_site))
        udr.sim.run(until=udr.sim.now + 2.0)
        assert udr.membership.stats.link_suspicions > 0
        for record in udr.membership.history:
            assert udr.elements[record.old_master].site == cut_site

    def test_blip_shorter_than_the_lease_window_changes_nothing(self):
        udr, _ = membership_udr()
        _, _, master_site = master_of(udr)
        partition = NetworkPartition.isolating(master_site)
        udr.sim.run(until=udr.sim.now + 0.45)
        udr.network.apply_partition(partition)
        udr.sim.run(until=udr.sim.now + (LEASE_TICKS - 1) * HEARTBEAT)
        udr.network.heal_partition(partition)
        udr.sim.run(until=udr.sim.now + 1.0)
        assert udr.membership.history == []
        assert udr.membership.stats.self_fences == 0


class TestFencing:
    def test_fenced_master_answers_fenced_and_recovers_on_unfence(self):
        udr, profiles = membership_udr()
        profile = profiles[0]
        index = keyed_partition(udr, profile)
        replica_set = udr.replica_sets[index]
        manager = replica_set.copy_on(
            replica_set.master_element_name).transactions
        manager.self_fence(reason="test")
        client = udr.attach("fe@fence", fe_site_for(udr, profile),
                            client_type=ClientType.APPLICATION_FE)
        with client.session() as session:
            denied = run_to_completion(udr, session.call(
                Write(profile.identities.imsi, {"servingMsc": "msc-f"})))
            assert denied.result_code is ResultCode.FENCED
            # Reads don't go through the write fence.
            read = run_to_completion(udr, session.call(
                Read(profile.identities.imsi)))
            assert read.ok
            manager.unfence()
            retried = run_to_completion(udr, session.call(
                Write(profile.identities.imsi, {"servingMsc": "msc-g"})))
            assert retried.ok

    def test_fenced_is_a_retryable_code(self):
        assert RetryPolicy().retries(ResultCode.FENCED)

    def test_writes_resume_on_the_new_master_at_the_new_epoch(self):
        udr, profiles = membership_udr()
        profile = profiles[0]
        index = keyed_partition(udr, profile)
        replica_set = udr.replica_sets[index]
        master = replica_set.master_element_name
        udr.sim.run(until=udr.sim.now + 0.5)
        udr.crash_element(master)
        udr.sim.run(until=udr.sim.now + 1.5)
        assert udr.membership.epoch_of(index) == 1
        new_master = replica_set.master_element_name
        assert new_master != master
        site = next(s for s in udr.topology.sites
                    if s != udr.elements[master].site)
        client = udr.attach("fe@epoch", site,
                            client_type=ClientType.APPLICATION_FE)
        with client.session() as session:
            response = run_to_completion(udr, session.call(
                Write(profile.identities.imsi, {"servingMsc": "msc-e1"})))
        assert response.ok
        top = replica_set.copy_on(new_master).wal.records[-1]
        assert top.epoch == 1
        assert top.position[0] == 1

    def test_epochs_advance_monotonically_across_failovers(self):
        udr, _ = membership_udr()
        replica_set, master, _ = master_of(udr)
        udr.sim.run(until=udr.sim.now + 0.5)
        udr.crash_element(master)
        udr.sim.run(until=udr.sim.now + 1.5)
        assert udr.membership.epoch_of(0) == 1
        second = replica_set.master_element_name
        udr.recover_element(master)
        udr.sim.run(until=udr.sim.now + 1.0)
        udr.crash_element(second)
        udr.sim.run(until=udr.sim.now + 1.5)
        assert udr.membership.epoch_of(0) == 2
        assert replica_set.master_element_name not in (None, second)

    def test_healed_deposed_master_rejoins_fenced_and_in_sync(self):
        udr, _ = membership_udr()
        replica_set, master, master_site = master_of(udr)
        partition = NetworkPartition.isolating(master_site)
        udr.sim.run(until=udr.sim.now + 0.5)
        udr.network.apply_partition(partition)
        udr.sim.run(until=udr.sim.now + 2.0)
        udr.network.heal_partition(partition)
        udr.sim.run(until=udr.sim.now + 2.0)
        deposed = replica_set.copy_on(master)
        assert deposed.transactions.fenced
        assert deposed.transactions.epoch == udr.membership.epoch_of(0)
        assert udr.membership.stats.fences_delivered >= 1
        assert udr.membership.protocol.pending_fences == {}

    def test_promotion_record_is_frozen_history(self):
        record = PromotionRecord(partition_index=0, epoch=1,
                                 old_master="a", new_master="b", at=1.0)
        with pytest.raises(AttributeError):
            record.epoch = 2


class TestOracleInertness:
    """``membership=None`` must be the PR 8 oracle path, bit for bit."""

    @staticmethod
    def _faulted_run(seed=11):
        config = UDRConfig(seed=seed)
        udr, profiles = build_udr(config, subscribers=18)
        sessions = {site: udr.attach(f"fe-{site.name}", site,
                                     client_type=ClientType.APPLICATION_FE)
                    .session()
                    for site in udr.topology.sites}
        replica_set = udr.replica_sets[0]
        master = replica_set.master_element_name
        futures = []

        def workload():
            rng = udr.sim.rng("inert.load")
            sites = list(udr.topology.sites)
            for index in range(120):
                yield udr.sim.timeout(rng.expovariate(60.0))
                profile = profiles[index % len(profiles)]
                operation = Write(profile.identities.imsi,
                                  {"servingMsc": f"m-{index}"}) \
                    if index % 2 else Read(profile.identities.imsi)
                futures.append(
                    sessions[sites[index % len(sites)]].submit(operation))
                if index == 60:
                    udr.crash_element(master)
                    udr.fail_over(master)

        udr.sim.process(workload())
        udr.sim.run(until=udr.sim.now + 6.0)
        codes = [future.response.result_code.name for future in futures]
        state = {}
        for index, rs in sorted(udr.replica_sets.items()):
            for member in rs.member_names:
                store = rs.copy_on(member).store
                state[(index, member)] = {
                    key: store.read_committed(key) for key in store.keys()}
        return udr, codes, state

    def test_oracle_failover_run_is_deterministic(self):
        _, codes_a, state_a = self._faulted_run()
        _, codes_b, state_b = self._faulted_run()
        assert codes_a == codes_b
        assert state_a == state_b

    def test_oracle_path_never_stamps_epochs_or_fences(self):
        udr, codes, _ = self._faulted_run()
        assert "FENCED" not in codes
        assert udr.membership is None
        for replica_set in udr.replica_sets.values():
            for member in replica_set.member_names:
                copy = replica_set.copy_on(member)
                assert not copy.transactions.fenced
                assert copy.transactions.epoch == 0
                assert all(record.epoch == 0
                           for record in copy.wal.records)


class TestUnavailabilityBound:
    def test_write_outage_is_the_lease_window_plus_the_vote(self):
        """Client-visible: sequential writes against the drilled
        partition recover within the bound plus one probe's retries."""
        udr, profiles = membership_udr()
        profile = profiles[0]
        index = keyed_partition(udr, profile)
        replica_set = udr.replica_sets[index]
        master = replica_set.master_element_name
        master_site = udr.elements[master].site
        probe_site = next(site for site in udr.topology.sites
                          if site != master_site)
        client = udr.attach("fe@probe", probe_site,
                            client_type=ClientType.APPLICATION_FE)
        session = client.session()
        log = []
        crash_at = udr.sim.now + 0.5

        def probe():
            count = 0
            while udr.sim.now < crash_at + 2.0:
                issued = udr.sim.now
                request = Write(profile.identities.imsi,
                                {"servingMsc": f"p-{count}"}).to_request()
                response = yield from session.call(request)
                log.append((issued, udr.sim.now, response.ok))
                count += 1
                yield udr.sim.timeout(0.025)

        def crash():
            yield udr.sim.timeout(crash_at - udr.sim.now)
            udr.crash_element(master)

        udr.sim.process(probe())
        udr.sim.process(crash())
        udr.sim.run(until=crash_at + 2.5)
        recovered = [completed for issued, completed, ok in log
                     if ok and issued >= crash_at]
        assert recovered, "no successful write after the crash"
        assert recovered[0] - crash_at <= BOUND + 0.5
