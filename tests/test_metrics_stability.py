"""Counter registry stability: the cached prefix scan and the name universe.

``MetricsRegistry.counters_with_prefix`` used to rebuild a filtered dict
over *every* counter on every call -- a full-registry allocation the
reconciler (once per round) and the dispatcher's shed accounting (once per
wave) multiplied onto the hot path.  PR 8 caches the name->prefix
membership and reads values live, so the fix is only safe if two things
hold forever:

* **equivalence** -- the cached scan returns exactly what the naive filter
  would, under any interleaving of increments (new and existing names) and
  queries (hypothesis property);
* **stability** -- the CDC/reconciliation counter names emitted by a
  representative run stay the pinned set, so a cached membership list
  cannot silently diverge from what the subsystems actually emit.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core import UDRConfig
from repro.core.config import CdcPolicy
from repro.metrics import MetricsRegistry

from tests.conftest import build_udr
from tests.helpers import inject_corruption

names = st.sampled_from(
    [f"{prefix}.{leaf}" for prefix in ("api", "api.client", "batch", "cdc")
     for leaf in string.ascii_lowercase[:4]])
prefixes = st.sampled_from(["api.", "api.client.", "batch.", "cdc.", "x."])


def naive_with_prefix(registry, prefix):
    return {name: value for name, value in registry._counters.items()
            if name.startswith(prefix)}


class TestPrefixScanEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.one_of(
        st.tuples(st.just("inc"), names, st.integers(1, 5)),
        st.tuples(st.just("query"), prefixes, st.just(0))),
        min_size=1, max_size=40))
    def test_cached_scan_matches_naive_filter(self, steps):
        registry = MetricsRegistry()
        for kind, argument, amount in steps:
            if kind == "inc":
                registry.increment(argument, amount)
            else:
                assert registry.counters_with_prefix(argument) == \
                    naive_with_prefix(registry, argument)
        for prefix in ("api.", "api.client.", "batch.", "cdc.", "x.", ""):
            assert registry.counters_with_prefix(prefix) == \
                naive_with_prefix(registry, prefix)

    def test_new_name_extends_a_cached_prefix(self):
        registry = MetricsRegistry()
        registry.increment("rec.a")
        assert registry.counters_with_prefix("rec.") == {"rec.a": 1}
        registry.increment("rec.b", 3)  # first appearance after the query
        assert registry.counters_with_prefix("rec.") == \
            {"rec.a": 1, "rec.b": 3}

    def test_values_are_read_live_not_snapshotted(self):
        registry = MetricsRegistry()
        registry.increment("rec.a")
        first = registry.counters_with_prefix("rec.")
        registry.increment("rec.a", 9)
        assert registry.counters_with_prefix("rec.") == {"rec.a": 10}
        assert first == {"rec.a": 1}, "earlier snapshots stay unchanged"

    def test_empty_prefix_and_unknown_prefix(self):
        registry = MetricsRegistry()
        assert registry.counters_with_prefix("nope.") == {}
        registry.increment("one", 2)
        assert registry.counters_with_prefix("") == {"one": 2}
        assert registry.counters_with_prefix("nope.") == {}


#: The CDC/reconciliation counter-name universe a representative corrupted
#: run emits.  A rename or removal breaks dashboards and the reconciler's
#: cached status surface alike -- extend deliberately, never rename.
PINNED_CDC_COUNTERS = {
    "cdc.events",
    "cdc.history.entries",
    "faults.corruption.injected",
    "faults.corruption.byte_flip",
    "faults.corruption.locator_drop",
    "reconciliation.rounds",
    "reconciliation.detected",
    "reconciliation.repaired",
    "reconciliation.locator_repaired",
}


class TestCounterNameStability:
    def test_representative_run_emits_the_pinned_names(self):
        config = UDRConfig(seed=7, cdc=CdcPolicy(reconcile_interval=1.0))
        udr, _ = build_udr(config, subscribers=16)
        udr.sim.run(until=0.5)
        inject_corruption(udr, "byte_flip")
        inject_corruption(udr, "locator_drop")
        udr.sim.run(until=6.0)
        emitted = set(udr.metrics.names()["counters"])
        missing = PINNED_CDC_COUNTERS - emitted
        assert not missing, f"pinned counters not emitted: {sorted(missing)}"

    def test_reconciler_status_reads_the_round_snapshot(self):
        """status() serves the per-round snapshot -- no registry scan per
        call -- and the snapshot keys stay inside the pinned universe."""
        config = UDRConfig(seed=7, cdc=CdcPolicy(reconcile_interval=1.0))
        udr, _ = build_udr(config, subscribers=8)
        udr.sim.run(until=2.5)
        status = udr.reconciler.status()
        assert status["counters"]
        reconciliation_names = {name for name in PINNED_CDC_COUNTERS
                                if name.startswith("reconciliation.")} \
            | {"reconciliation.false_positive", "reconciliation.reads_steered"}
        assert set(status["counters"]) <= reconciliation_names
        # The snapshot is per round: mutating the registry between rounds
        # does not change what status() serves.
        udr.metrics.increment("reconciliation.rounds", 0)
        before = dict(status["counters"])
        udr.metrics.increment("reconciliation.detected", 100)
        assert udr.reconciler.status()["counters"] == before
