"""Replication-mux queue-health policies (PR 5's satellite tasks).

* WAL retention: ``UDRConfig.wal_retention`` lets the mux truncate master
  commit logs through the slowest shipped-LSN cursor (never past the
  durability watermark), bounding log memory on long runs;
* recovery re-arm: with the availability-manager subscription, a link
  stalled on a down endpoint schedules *zero* retry wakeups and re-arms
  exactly on the component's recovery;
* per-shipment backpressure: ``replication_shipment_max_records`` splits a
  fat backlog into bounded frames over consecutive rounds.
"""

from repro.cluster.saf import AvailabilityManager
from repro.core import UDRConfig
from repro.replication import AsyncReplicationChannel
from repro.replication.mux import ReplicationMux

from tests.helpers import build_replicated_partition, master_write
from tests.conftest import build_udr, run_to_completion


def build_link(seed=1, **mux_kwargs):
    """One partition, master at site 0, slave at site 1, mux-driven."""
    sim, network, _topology, elements, replica_set = \
        build_replicated_partition(seed=seed, num_elements=2,
                                   replication_factor=2)
    channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
    mux = ReplicationMux(sim, network, ship_linger=0.05, **mux_kwargs)
    mux.attach(channel)
    return sim, network, elements, replica_set, channel, mux


class TestWalRetention:
    def test_shipped_and_durable_prefix_is_truncated(self):
        sim, _network, _elements, replica_set, channel, mux = \
            build_link(wal_retention=5)
        mux.start()
        wal = replica_set.master_copy.wal
        for index in range(12):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.2)  # one shipping round moves everything
        assert channel.lag().in_sync
        # Nothing truncated yet: the records are shipped but not durable.
        assert len(wal) == 12
        replica_set.master_copy.checkpointer.checkpoint(timestamp=sim.now)
        master_write(replica_set, "k-last", {"v": 99}, timestamp=sim.now)
        sim.run(until=0.4)  # the next round applies retention
        assert len(wal) < 13, "the shipped+durable prefix was dropped"
        assert mux.wal_records_truncated >= 12
        # The slave still holds every record.
        for index in range(12):
            assert replica_set.copy_on("se-1").store.contains(f"k-{index}")

    def test_slowest_cursor_bounds_truncation(self):
        """A second slave that never received anything pins the log."""
        sim, network, _topology, elements, replica_set = \
            build_replicated_partition(seed=2, num_elements=3,
                                       replication_factor=3)
        fast = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        slow = AsyncReplicationChannel(sim, network, replica_set, "se-2")
        mux = ReplicationMux(sim, network, ship_linger=0.05, wal_retention=3)
        mux.attach(fast)
        elements[2].crash()  # the slow slave is down: cursor stays at 0
        mux.attach(slow)
        mux.start()
        wal = replica_set.master_copy.wal
        for index in range(8):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        replica_set.master_copy.checkpointer.checkpoint(timestamp=sim.now)
        master_write(replica_set, "k-8", {"v": 8}, timestamp=sim.now)
        sim.run(until=0.3)
        assert len(wal) == 9, \
            "an unshipped slave's zero cursor must pin the whole log"
        assert mux.wal_records_truncated == 0

    def test_retention_bounds_log_memory_in_a_deployment(self):
        """End to end: a long writing run against a deployment with
        ``wal_retention`` and frequent checkpoints keeps every master log
        bounded, with replicas intact."""
        from repro.api import Write
        from repro.core import ClientType
        config = UDRConfig(wal_retention=10, checkpoint_period=0.5, seed=3)
        udr, profiles = build_udr(config, subscribers=24)
        client = udr.attach("ps", udr.topology.sites[0],
                            client_type=ClientType.PROVISIONING)
        session = client.session()
        for round_index in range(4):
            for index, profile in enumerate(profiles):
                run_to_completion(udr, session.call(
                    Write(profile.identities.imsi,
                          {"servingMsc": f"m-{round_index}-{index}"})))
            udr.sim.run_for(1.0)  # checkpoints + shipping rounds
        total_writes = 4 * len(profiles)
        truncated = udr.metrics.counter("replication.wal.truncated")
        assert truncated > 0
        for replica_set in udr.replica_sets.values():
            wal = replica_set.master_copy.wal
            assert len(wal) < total_writes, f"{wal!r} never truncated"


class TestRecoveryRearm:
    def test_endpoint_stall_waits_for_recovery_not_cadence(self):
        sim, network, elements, replica_set, channel, mux = build_link()
        manager = AvailabilityManager(sim)
        slave = elements[1]
        manager.manage("se-1", fail_action=slave.crash,
                       repair_action=lambda: slave.recover(
                           timestamp=sim.now))
        mux.bind_availability(manager)
        mux.start()
        manager.fail_component("se-1", auto_repair=False)
        master_write(replica_set, "k-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=2.0)
        assert not replica_set.copy_on("se-1").store.contains("k-1")
        assert mux.wakeups <= 1, \
            "a down endpoint must not be polled on the retry cadence"
        wakeups_during_outage = mux.wakeups
        manager.repair_component("se-1")
        sim.run(until=2.2)
        assert replica_set.copy_on("se-1").store.contains("k-1")
        assert mux.wakeups == wakeups_during_outage + 1, \
            "recovery re-armed exactly one shipping round"

    def test_without_subscription_cadence_retry_is_kept(self):
        sim, _network, elements, replica_set, channel, mux = build_link()
        mux.start()
        elements[1].crash()
        master_write(replica_set, "k-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=1.0)
        assert mux.wakeups > 5, "unsubscribed muxes keep the retry cadence"
        elements[1].recover(timestamp=sim.now)
        sim.run(until=1.2)
        assert replica_set.copy_on("se-1").store.contains("k-1")

    def test_deployment_outage_costs_no_replication_wakeups(self):
        """The built deployment wires the subscription by default: an
        element outage with pending backlog schedules no mux retries, and
        lifecycle recovery drains the backlog."""
        udr, profiles = build_udr(subscribers=12)
        udr.sim.run_for(0.5)  # quiesce the base-load shipping rounds
        # Crash every slave of one replica set, then write to its master.
        replica_set = udr.replica_sets[0]
        for slave_name in replica_set.slave_names():
            udr.crash_element(slave_name)
        from tests.helpers import master_write as commit
        commit(replica_set, "outage-key", {"v": 1}, timestamp=udr.sim.now)
        wakeups_before = udr.replication_mux.wakeups
        udr.sim.run_for(2.0)
        assert udr.replication_mux.wakeups - wakeups_before <= 1
        for slave_name in replica_set.slave_names():
            udr.recover_element(slave_name)
        udr.sim.run_for(1.0)
        for slave_name in replica_set.slave_names():
            assert replica_set.copy_on(slave_name).store.contains(
                "outage-key")


class TestShipmentBackpressure:
    def test_fat_burst_splits_into_bounded_frames(self):
        sim, network, _elements, replica_set, channel, mux = \
            build_link(shipment_max_records=4)
        mux.start()
        for index in range(10):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.055)  # exactly one grid point
        assert channel.records_shipped == 4, "the first frame was capped"
        sim.run(until=1.0)
        assert channel.records_shipped == 10, "the backlog drained in frames"
        assert mux.shipments == 3, "10 records / 4 per frame = 3 rounds"
        assert channel.lag().in_sync

    def test_cap_spans_channels_of_one_link(self):
        """The cap is per shipment (per link), not per channel."""
        from repro.storage import DataPartition, ReplicaRole
        from repro.replication import ReplicaSet
        sim, network, _topology, elements, set_a = \
            build_replicated_partition(seed=4, num_elements=2,
                                       replication_factor=2)
        set_b = ReplicaSet(DataPartition(1))
        set_b.add_member(elements[0], ReplicaRole.PRIMARY)
        set_b.add_member(elements[1], ReplicaRole.SECONDARY)
        channel_a = AsyncReplicationChannel(sim, network, set_a, "se-1")
        channel_b = AsyncReplicationChannel(sim, network, set_b, "se-1")
        mux = ReplicationMux(sim, network, ship_linger=0.05,
                             shipment_max_records=3)
        mux.attach(channel_a)
        mux.attach(channel_b)
        mux.start()
        for index in range(3):
            master_write(set_a, f"a-{index}", {"v": index},
                         timestamp=sim.now)
            master_write(set_b, f"b-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.055)
        assert channel_a.records_shipped + channel_b.records_shipped == 3
        sim.run(until=1.0)
        assert channel_a.records_shipped == 3
        assert channel_b.records_shipped == 3

    def test_rotation_prevents_link_mate_starvation(self):
        """A channel that refills the budget every round must not starve
        the other channels of its link: the member scan rotates."""
        from repro.storage import DataPartition, ReplicaRole
        from repro.replication import ReplicaSet
        sim, network, _topology, elements, set_a = \
            build_replicated_partition(seed=5, num_elements=2,
                                       replication_factor=2)
        set_b = ReplicaSet(DataPartition(1))
        set_b.add_member(elements[0], ReplicaRole.PRIMARY)
        set_b.add_member(elements[1], ReplicaRole.SECONDARY)
        channel_a = AsyncReplicationChannel(sim, network, set_a, "se-1")
        channel_b = AsyncReplicationChannel(sim, network, set_b, "se-1")
        mux = ReplicationMux(sim, network, ship_linger=0.05,
                             shipment_max_records=2)
        mux.attach(channel_a)
        mux.attach(channel_b)
        mux.start()

        def keep_a_busy():
            index = 0
            while sim.now < 0.5:
                # Refill partition 0 faster than the cap drains it.
                for _ in range(3):
                    master_write(set_a, f"a-{index}", {"v": index},
                                 timestamp=sim.now)
                    index += 1
                yield sim.timeout(0.05)

        sim.process(keep_a_busy())
        master_write(set_b, "b-0", {"v": 0}, timestamp=sim.now)
        sim.run(until=0.3)
        assert channel_b.records_shipped == 1, \
            "the rotating scan must reach partition 1 within a few rounds"

    def test_unbounded_by_default(self):
        sim, _network, _elements, replica_set, channel, mux = build_link()
        mux.start()
        for index in range(10):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.2)
        assert mux.shipments == 1
        assert channel.records_shipped == 10


class TestCdcRetention:
    """PR 8: the CDC plane's tapped-LSN cursors join the retention minimum."""

    def build_cdc_link(self, **mux_kwargs):
        from repro.cdc import ChangeStream
        sim, network, elements, replica_set, channel, mux = \
            build_link(**mux_kwargs)
        stream = ChangeStream()
        for _, copy in replica_set.members():
            stream.tap(0, copy)
        mux.bind_cdc(stream.cursor_for)
        return sim, network, elements, replica_set, channel, mux, stream

    def test_paused_stream_pins_retention(self):
        sim, _network, _elements, replica_set, channel, mux, stream = \
            self.build_cdc_link(wal_retention=3)
        mux.start()
        wal = replica_set.master_copy.wal
        for index in range(6):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.2)
        replica_set.master_copy.checkpointer.checkpoint(timestamp=sim.now)
        master_write(replica_set, "k-live", {"v": 6}, timestamp=sim.now)
        sim.run(until=0.4)
        assert mux.wal_records_truncated >= 6, \
            "a live stream (cursor at the tail) does not block retention"
        stream.pause()
        frozen = stream.cursor_for(wal)
        for index in range(6):
            master_write(replica_set, f"p-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.6)
        replica_set.master_copy.checkpointer.checkpoint(timestamp=sim.now)
        master_write(replica_set, "p-live", {"v": 99}, timestamp=sim.now)
        sim.run(until=0.8)
        # Everything past the frozen cursor is still in the log, shipped
        # and durable or not.
        assert wal.since(frozen), "paused cursor must pin the unseen suffix"
        assert wal.records[0].lsn <= frozen + 1
        stream.resume()
        assert stream.gap_records_lost == 0
        assert stream.checkpoint(0) == 14, "every commit folded, no gaps"

    def test_unpinned_stream_allows_normal_truncation(self):
        """A stream at the tail leaves retention exactly as without CDC."""
        sim, _n, _e, replica_set, channel, mux, stream = \
            self.build_cdc_link(wal_retention=2)
        mux.start()
        wal = replica_set.master_copy.wal
        for index in range(8):
            master_write(replica_set, f"k-{index}", {"v": index},
                         timestamp=sim.now)
        sim.run(until=0.2)
        replica_set.master_copy.checkpointer.checkpoint(timestamp=sim.now)
        master_write(replica_set, "k-8", {"v": 8}, timestamp=sim.now)
        sim.run(until=0.4)
        assert stream.cursor_for(wal) == wal.last_lsn
        assert mux.wal_records_truncated >= 8
        assert stream.checkpoint(0) == 9

    def test_retention_never_truncates_past_cdc_cursor_property(self):
        """Hypothesis: under any interleaving of writes, pauses, resumes
        and checkpoint/retention rounds, every record the stream has not
        seen is still in the log, and resume recovers the full sequence."""
        from hypothesis import given, settings, strategies as st

        actions = st.lists(
            st.sampled_from(["write", "write", "write", "pause", "resume",
                             "round"]),
            min_size=1, max_size=25)

        @settings(max_examples=20, deadline=None)
        @given(actions=actions)
        def run(actions):
            sim, _n, _e, replica_set, channel, mux, stream = \
                self.build_cdc_link(wal_retention=2)
            mux.start()
            wal = replica_set.master_copy.wal
            writes = 0
            for action in actions:
                if action == "write":
                    writes += 1
                    master_write(replica_set, f"k-{writes % 4}",
                                 {"v": writes}, timestamp=sim.now)
                elif action == "pause":
                    stream.pause()
                elif action == "resume":
                    stream.resume()
                else:
                    replica_set.master_copy.checkpointer.checkpoint(
                        timestamp=sim.now)
                    sim.run(until=sim.now + 0.2)
                # The invariant: LSNs are dense from 1, one per write, so
                # the log must still hold every record past the cursor.
                cursor = stream.cursor_for(wal)
                assert len(wal.since(cursor)) == writes - cursor
            stream.resume()
            assert stream.gap_records_lost == 0
            assert stream.checkpoint(0) == writes
            assert stream.events_folded == writes

        run()

    def test_cdc_off_leaves_no_trace(self):
        """Regression: without ``UDRConfig.cdc`` nothing of the CDC plane
        exists -- no taps, no cursor bound into retention, no counters."""
        udr, _ = build_udr(UDRConfig(seed=5, wal_retention=10),
                           subscribers=10)
        assert udr.change_stream is None
        assert udr.history is None
        assert udr.reconciler is None
        assert udr.replication_mux._cdc_cursor is None
        names = udr.metrics.names()["counters"]
        assert not any(name.startswith(("cdc.", "reconciliation."))
                       for name in names)

    def test_cdc_tap_is_passive_on_state_and_codes(self):
        """The same seeded write trace lands on identical result codes and
        identical store state with the CDC tap on (no reconciler) and off:
        the stream observes, it never participates."""
        from repro.api import Write
        from repro.core import ClientType
        from repro.core.config import CdcPolicy

        def run_trace(cdc):
            config = UDRConfig(seed=11, wal_retention=10,
                               checkpoint_period=0.5, cdc=cdc)
            udr, profiles = build_udr(config, subscribers=12)
            client = udr.attach("ps", udr.topology.sites[0],
                                client_type=ClientType.PROVISIONING)
            session = client.session()
            codes = []
            for index, profile in enumerate(profiles):
                response = run_to_completion(udr, session.call(
                    Write(profile.identities.imsi, {"servingMsc": f"m-{index}"})))
                codes.append(response.result_code)
            udr.sim.run_for(2.0)
            state = {}
            for set_name, replica_set in udr.replica_sets.items():
                for member in replica_set.member_names:
                    copy = replica_set.copy_on(member)
                    state[(set_name, member)] = {
                        key: copy.store.get(key)
                        for key in copy.store.keys()}
            return codes, state

        off_codes, off_state = run_trace(cdc=None)
        on_codes, on_state = run_trace(cdc=CdcPolicy())
        assert on_codes == off_codes
        assert on_state == off_state
