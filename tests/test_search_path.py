"""End-to-end tests for scoped search: DIT-indexed path, scan fallback,
keyset paging, and WAL-hook catalog maintenance."""

import pytest

from repro.api.operations import Provision, Search, Write
from repro.core import ClientType, UDRConfig
from repro.core.config import DispatchMode
from repro.ldap.operations import ResultCode, SearchScope
from repro.ldap.schema import SubscriberSchema

from tests.conftest import build_udr, run_to_completion


def _session(udr, name="search-tester"):
    # PROVISIONING clients read from masters, so results are never behind
    # an in-flight replication shipment.
    client = udr.attach(name, udr.topology.sites[0],
                        client_type=ClientType.PROVISIONING)
    return client.session()


def _run(udr, session, operation):
    def driver():
        future = session.submit(operation)
        response = yield from future.wait()
        return response
    return run_to_completion(udr, driver())


def _run_pages(udr, session, operation):
    def driver():
        pages = yield from session.search_pages(operation)
        return pages
    return run_to_completion(udr, driver())


def _reference(profiles, filter_text):
    from repro.ldap.filters import parse_filter
    parsed = parse_filter(filter_text)
    matches = []
    for profile in profiles:
        entry = SubscriberSchema.ldap_entry(
            profile.to_record(),
            SubscriberSchema.subscriber_dn(profile.identities.imsi))
        if parsed.matches(entry):
            matches.append(entry["imsi"])
    return sorted(matches)


def _imsis(response):
    return sorted(entry["imsi"] for entry in response.entries)


class TestScopedSearchEquivalence:
    def test_subtree_matches_bruteforce(self, fresh_udr):
        udr, profiles = fresh_udr
        session = _session(udr)
        region = profiles[0].home_region
        filter_text = f"(homeRegion={region})"
        response = _run(udr, session, Search.scoped(filter_text))
        assert response.ok
        assert response.served_from == "dit-index"
        assert _imsis(response) == _reference(profiles, filter_text)
        assert udr.metrics.counter("ldap.search.indexed") == 1
        assert udr.metrics.counter("ldap.search.scan") == 0

    def test_one_level_equals_subtree_on_flat_base(self, fresh_udr):
        # Subscriber entries hang directly under the base, so both scopes
        # must return the same set there.
        udr, profiles = fresh_udr
        session = _session(udr)
        sub = _run(udr, session, Search.scoped(
            "(objectClass=udrSubscriber)", scope=SearchScope.SUBTREE))
        one = _run(udr, session, Search.scoped(
            "(objectClass=udrSubscriber)", scope=SearchScope.ONE_LEVEL))
        assert sub.ok and one.ok
        assert _imsis(sub) == _imsis(one)
        assert len(sub.entries) == len(profiles)

    def test_base_scope_on_entry_dn(self, fresh_udr):
        udr, profiles = fresh_udr
        session = _session(udr)
        imsi = profiles[0].identities.imsi
        response = _run(udr, session, Search.scoped(
            "(objectClass=*)", scope=SearchScope.BASE,
            base=SubscriberSchema.subscriber_dn(imsi)))
        assert response.ok
        assert _imsis(response) == [imsi]

    def test_missing_base_is_no_such_object(self, fresh_udr):
        udr, _ = fresh_udr
        session = _session(udr)
        response = _run(udr, session, Search.scoped(
            "(objectClass=*)",
            base=SubscriberSchema.BASE_DN.child("ou", "nowhere")))
        assert not response.ok
        assert response.result_code is ResultCode.NO_SUCH_OBJECT

    def test_attribute_projection(self, fresh_udr):
        udr, profiles = fresh_udr
        session = _session(udr)
        response = _run(udr, session, Search.scoped(
            f"(imsi={profiles[0].identities.imsi})",
            attributes=("imsi", "homeRegion")))
        assert response.ok and response.entries
        for entry in response.entries:
            assert set(entry) <= {"imsi", "homeRegion", "dn"}


class TestScanFallback:
    def test_scan_returns_identical_set(self):
        indexed_udr, profiles = build_udr(config=UDRConfig(seed=7))
        scan_udr, _ = build_udr(config=UDRConfig(
            seed=7, search_index_enabled=False))
        region = profiles[0].home_region
        filter_text = f"(homeRegion={region})"
        indexed = _run(indexed_udr, _session(indexed_udr),
                       Search.scoped(filter_text))
        scanned = _run(scan_udr, _session(scan_udr),
                       Search.scoped(filter_text))
        assert indexed.ok and scanned.ok
        assert scanned.served_from == "full-scan"
        assert _imsis(indexed) == _imsis(scanned)
        assert _imsis(scanned) == _reference(profiles, filter_text)
        assert scan_udr.metrics.counter("ldap.search.scan") == 1
        assert scan_udr.metrics.counter("ldap.search.indexed") == 0


class TestKeysetPaging:
    def test_paged_union_equals_unpaged(self, fresh_udr):
        udr, profiles = fresh_udr
        session = _session(udr)
        filter_text = "(objectClass=udrSubscriber)"
        unpaged = _run(udr, session, Search.scoped(filter_text))
        pages = _run_pages(udr, session,
                           Search.scoped(filter_text, page_size=7))
        assert all(page.ok for page in pages)
        assert len(pages) > 1
        for page in pages[:-1]:
            assert len(page.entries) == 7
            assert page.has_more and page.next_cursor
        union = sorted(entry["imsi"] for page in pages
                       for entry in page.entries)
        assert union == _imsis(unpaged)
        assert udr.metrics.counter("ldap.search.pages") == len(pages)

    def test_pages_are_disjoint_and_ordered(self, fresh_udr):
        udr, _ = fresh_udr
        session = _session(udr)
        pages = _run_pages(udr, session, Search.scoped(
            "(objectClass=udrSubscriber)", page_size=10))
        seen = []
        for page in pages:
            seen.extend(entry["imsi"] for entry in page.entries)
        assert seen == sorted(seen)  # keyset order is total
        assert len(seen) == len(set(seen))  # no entry served twice

    def test_malformed_cursor_rejected(self, fresh_udr):
        udr, _ = fresh_udr
        session = _session(udr)
        response = _run(udr, session, Search.scoped(
            "(objectClass=udrSubscriber)", page_size=5,
            cursor="not-a-cursor"))
        assert not response.ok
        assert response.result_code is ResultCode.UNWILLING_TO_PERFORM

    def test_page_size_validated_at_operation_layer(self):
        with pytest.raises(ValueError):
            Search.scoped("(objectClass=*)", page_size=0)


class TestCatalogMaintenance:
    def test_provision_terminate_and_write_move_postings(self, fresh_udr):
        udr, profiles = fresh_udr
        session = _session(udr, "maint-ps")
        from repro.subscriber import SubscriberGenerator
        newcomer = SubscriberGenerator(udr.config.regions,
                                       seed=4321).generate_one()
        imsi = newcomer.identities.imsi
        filter_text = f"(imsi={imsi})"

        before = _run(udr, session, Search.scoped(filter_text))
        assert before.ok and before.entries == []

        created = _run(udr, session, Provision.create(newcomer.to_record()))
        assert created.ok
        found = _run(udr, session, Search.scoped(filter_text))
        assert _imsis(found) == [imsi]

        # A write that changes an indexed attribute must move the entry
        # between postings sets, visibly to searches.
        moved = _run(udr, session,
                     Write(imsi, {"organisation": "org-moved"}))
        assert moved.ok
        by_org = _run(udr, session, Search.scoped(
                      f"(&(imsi={imsi})(organisation=org-moved))"))
        assert _imsis(by_org) == [imsi]

        gone = _run(udr, session, Provision.terminate(imsi))
        assert gone.ok
        after = _run(udr, session, Search.scoped(filter_text))
        assert after.ok and after.entries == []

    def test_relabel_counter_surfaces(self, fresh_udr):
        udr, _ = fresh_udr
        # Loading the 60-subscriber base triggers at least one relabel of
        # the flat subscriber container.
        assert udr.metrics.counter("directory.dit.relabels") > 0
        assert udr.catalog is not None
        assert udr.metrics.counter("directory.dit.relabels") == \
            udr.catalog.relabels


class TestDispatcherMode:
    def test_paged_search_through_dispatcher(self):
        udr, profiles = build_udr(config=UDRConfig(
            seed=7, dispatch_mode=DispatchMode.DISPATCHER))
        session = _session(udr)
        pages = _run_pages(udr, session, Search.scoped(
            "(objectClass=udrSubscriber)", page_size=25))
        assert all(page.ok for page in pages)
        union = sorted(entry["imsi"] for page in pages
                       for entry in page.entries)
        assert len(union) == len(profiles)
        assert udr.metrics.counter("dispatcher.search_pages") == len(pages)
