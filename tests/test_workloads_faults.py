"""Unit tests for the workload models and the fault injector."""

import pytest

from repro.faults import (
    ElementFailureProcess,
    FaultInjector,
    FaultSchedule,
    PartitionIncident,
    SiteDisaster,
)
from repro.net import NetworkPartition
from repro.sim import Simulation, units
from repro.subscriber import SubscriberGenerator
from repro.workloads import BusyHourProfile, RoamingModel, TrafficProfile, WorkloadMix

from tests.conftest import build_udr


class TestTrafficProfile:
    def test_rates_scale_with_subscribers(self):
        profile = TrafficProfile(procedures_per_subscriber_per_hour=7.2)
        assert profile.procedure_rate(1000) == pytest.approx(2.0)
        assert profile.procedure_rate(2000) == pytest.approx(4.0)

    def test_ldap_ops_scale_with_procedure_cost(self):
        profile = TrafficProfile()
        classic = profile.ldap_ops_per_second(10_000, ops_per_procedure=2)
        ims = profile.ldap_ops_per_second(10_000, ops_per_procedure=6)
        assert ims == pytest.approx(3 * classic)

    def test_provisioning_rate(self):
        profile = TrafficProfile(
            provisioning_ops_per_thousand_subscribers_per_hour=3.6)
        assert profile.provisioning_rate(1_000_000) == pytest.approx(1.0)

    def test_offered_load_far_below_paper_ceiling(self):
        """The headroom claim: real traffic uses a small share of capacity."""
        profile = TrafficProfile(procedures_per_subscriber_per_hour=10)
        offered_per_subscriber = profile.ldap_ops_per_second(
            1, ops_per_procedure=3)
        assert offered_per_subscriber < 0.01 < 16

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TrafficProfile(procedures_per_subscriber_per_hour=-1)
        with pytest.raises(ValueError):
            TrafficProfile().ldap_ops_per_second(10, ops_per_procedure=0)


class TestBusyHourProfile:
    def test_factor_follows_hour_of_day(self):
        profile = BusyHourProfile()
        assert profile.factor_at(9 * units.HOUR) == 1.0
        assert profile.factor_at(3 * units.HOUR) < 0.2
        assert profile.factor_at(27 * units.HOUR) == \
            profile.factor_at(3 * units.HOUR), "the day wraps around"

    def test_busy_and_low_hours_disjoint(self):
        profile = BusyHourProfile()
        assert set(profile.busy_hours()).isdisjoint(
            profile.low_traffic_hours())
        assert profile.low_traffic_hours(), \
            "there are low-traffic hours for batch provisioning"

    def test_scale_rate(self):
        profile = BusyHourProfile()
        assert profile.scale_rate(10.0, 9 * units.HOUR) == pytest.approx(10.0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            BusyHourProfile(hourly_factors=(1.0,) * 23)
        with pytest.raises(ValueError):
            BusyHourProfile(hourly_factors=(-1.0,) + (1.0,) * 23)


class TestRoamingModel:
    def test_home_share_roughly_matches_probability(self):
        sim = Simulation(seed=5)
        subscribers = SubscriberGenerator(["spain", "sweden"], seed=5).generate(400)
        model = RoamingModel(["spain", "sweden"], roaming_probability=0.2)
        placed = model.place_population(subscribers, sim.rng("roam"))
        census = model.roaming_census(placed)
        share = census["roaming"] / len(placed)
        assert 0.12 < share < 0.28

    def test_zero_roaming_keeps_everyone_home(self):
        sim = Simulation(seed=5)
        subscribers = SubscriberGenerator(["spain", "sweden"], seed=5).generate(50)
        model = RoamingModel(["spain", "sweden"], roaming_probability=0.0)
        placed = model.place_population(subscribers, sim.rng("roam"))
        assert all(not subscriber.roaming() for subscriber in placed)

    def test_single_region_never_roams(self):
        model = RoamingModel(["spain"], roaming_probability=0.9)
        assert model.expected_roaming_share() == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RoamingModel([], 0.1)
        with pytest.raises(ValueError):
            RoamingModel(["spain"], 1.5)


class TestWorkloadMix:
    def test_population_generation_and_grouping(self):
        mix = WorkloadMix(subscribers=120, seed=3, roaming_probability=0.1)
        population = mix.generate_population()
        assert len(population) == 120
        groups = mix.subscribers_by_region(population)
        assert set(groups) >= set(mix.regions)
        assert sum(len(group) for group in groups.values()) == 120

    def test_average_operations_per_procedure_in_paper_range(self):
        mix = WorkloadMix(subscribers=5, seed=3)
        sample = mix.generate_population()[0]
        assert 1.0 <= mix.average_operations_per_procedure(sample) <= 3.0

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadMix(subscribers=0)


class TestFaultDescriptions:
    def test_partition_incident_window(self):
        partition = NetworkPartition([["some-site"]])
        incident = PartitionIncident(partition=partition, start=5.0,
                                     duration=10.0)
        assert incident.end == 15.0
        with pytest.raises(ValueError):
            PartitionIncident(partition=partition, start=-1, duration=10)
        with pytest.raises(ValueError):
            PartitionIncident(partition=partition, start=0, duration=0)

    def test_element_failure_process_draws_within_horizon(self):
        sim = Simulation(seed=9)
        process = ElementFailureProcess(mtbf=10 * units.DAY, mttr=units.HOUR)
        times = process.draw_failure_times(sim.rng("f"), horizon=365 * units.DAY)
        assert all(0 < t < 365 * units.DAY for t in times)
        assert len(times) == pytest.approx(process.expected_failures(
            365 * units.DAY), abs=15)

    def test_expected_unavailability(self):
        process = ElementFailureProcess(mtbf=99 * units.HOUR, mttr=units.HOUR)
        assert process.expected_unavailability() == pytest.approx(0.01)

    def test_invalid_process_rejected(self):
        with pytest.raises(ValueError):
            ElementFailureProcess(mtbf=0)
        with pytest.raises(ValueError):
            SiteDisaster(site_name="x", start=-1)


class TestFaultInjector:
    def test_scheduled_partition_applies_and_heals(self):
        udr, _ = build_udr(subscribers=10)
        spain = udr.topology.region("spain")
        partition = NetworkPartition.splitting_regions(udr.topology, spain)
        schedule = FaultSchedule().add_partition(
            PartitionIncident(partition=partition, start=10.0, duration=20.0))
        injector = FaultInjector(udr, schedule)
        injector.start()
        spain_site = udr.topology.site("spain-dc1")
        sweden_site = udr.topology.site("sweden-dc1")
        udr.sim.run(until=15.0)
        assert not udr.network.reachable(spain_site, sweden_site)
        udr.sim.run(until=40.0)
        assert udr.network.reachable(spain_site, sweden_site)
        assert injector.partitions_applied == 1

    def test_site_disaster_takes_down_and_restores_everything(self):
        udr, _ = build_udr(subscribers=10)
        schedule = FaultSchedule().add_disaster(
            SiteDisaster(site_name="spain-dc1", start=5.0, duration=30.0))
        injector = FaultInjector(udr, schedule)
        injector.start()
        udr.sim.run(until=10.0)
        spain_elements = [element for element in udr.elements.values()
                          if element.site.name == "spain-dc1"]
        assert all(not element.available for element in spain_elements)
        spain_poa = next(poa for poa in udr.points_of_access
                         if poa.site.name == "spain-dc1")
        assert not spain_poa.available
        udr.sim.run(until=60.0)
        assert all(element.available for element in spain_elements)
        assert spain_poa.available

    def test_stochastic_element_failures_schedule_and_repair(self):
        udr, _ = build_udr(subscribers=10)
        process = ElementFailureProcess(mtbf=2 * units.HOUR,
                                        mttr=10 * units.MINUTE)
        scheduled = FaultInjector(udr).run_element_failures(
            process, horizon=12 * units.HOUR,
            element_names=[next(iter(udr.elements))])
        assert scheduled > 0
        udr.sim.run(until=12 * units.HOUR)
        element = udr.elements[next(iter(udr.elements))]
        assert element.crashes >= 1
        assert element.available, "the SAF manager repaired it"

    def test_empty_schedule_is_harmless(self):
        udr, _ = build_udr(subscribers=5)
        injector = FaultInjector(udr)
        assert injector.schedule.empty
        injector.start()
        udr.sim.run(until=1.0)
        assert injector.partitions_applied == 0
