"""Regression guard: the staged pipeline answers a canned request matrix
with exactly the result codes the monolithic ``execute()`` produced, the
location-cache fast path never changes a result code, and the batch path
(mixed-priority batches, retry exhaustion, fail-over mid-batch) answers its
own canned matrix."""

import pytest

from repro.core import BatchItem, ClientType, Priority, RetryPolicy, UDRConfig
from repro.ldap import (
    AddRequest,
    DeleteRequest,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SubscriberSchema,
)
from repro.net import NetworkPartition
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion


def run_request_matrix(udr, profiles):
    """Drive a fixed request sequence; return the result-code names."""
    known = profiles[0]
    other = profiles[1]
    generator = SubscriberGenerator(udr.config.regions, seed=987)
    newcomer = generator.generate_one()
    fe, ps = ClientType.APPLICATION_FE, ClientType.PROVISIONING
    home = fe_site_for(udr, known)
    remote = next(site for site in udr.topology.sites
                  if site.region.name != known.home_region)

    def dn(profile):
        return SubscriberSchema.subscriber_dn(profile.identities.imsi)

    matrix = [
        ("read known imsi", fe, home, SearchRequest(dn=dn(known))),
        ("repeat read (cache hit path)", fe, home,
         SearchRequest(dn=dn(known))),
        ("read by msisdn filter", fe, home, SearchRequest(
            dn=SubscriberSchema.BASE_DN,
            filter_text=f"(msisdn={known.identities.msisdn})")),
        ("read unknown imsi", fe, home, SearchRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"))),
        ("create newcomer", ps, home, AddRequest(
            dn=dn(newcomer), attributes=newcomer.to_record())),
        ("read newcomer", fe, home, SearchRequest(dn=dn(newcomer))),
        ("duplicate create", ps, home, AddRequest(
            dn=dn(known), attributes=known.to_record())),
        ("modify known", fe, home, ModifyRequest(
            dn=dn(known), changes={"servingMsc": "msc-1"})),
        ("modify unknown", ps, home, ModifyRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"),
            changes={"servingMsc": "x"})),
        ("delete other", ps, home, DeleteRequest(dn=dn(other))),
        ("read deleted", fe, home, SearchRequest(dn=dn(other))),
        ("base scope search", fe, home, SearchRequest(
            dn=SubscriberSchema.BASE_DN, filter_text="(objectClass=*)")),
    ]
    codes = []
    for label, client, site, request in matrix:
        response = run_to_completion(udr, udr.execute(request, client, site))
        codes.append((label, response.result_code.name))

    # Partition the known subscriber's home region away and write from the
    # wrong side (the paper's prefer-consistency failure), then heal.
    region = udr.topology.region(known.home_region)
    partition = NetworkPartition.splitting_regions(udr.topology, region)
    udr.network.apply_partition(partition)
    response = run_to_completion(udr, udr.execute(
        ModifyRequest(dn=dn(known), changes={"svcBarPremium": True}),
        ClientType.PROVISIONING, remote))
    codes.append(("write from cut-off side", response.result_code.name))
    udr.network.heal_partition(partition)
    response = run_to_completion(udr, udr.execute(
        ModifyRequest(dn=dn(known), changes={"svcBarPremium": True}),
        ClientType.PROVISIONING, remote))
    codes.append(("write after heal", response.result_code.name))
    return codes


EXPECTED = [
    ("read known imsi", "SUCCESS"),
    ("repeat read (cache hit path)", "SUCCESS"),
    ("read by msisdn filter", "SUCCESS"),
    ("read unknown imsi", "NO_SUCH_OBJECT"),
    ("create newcomer", "SUCCESS"),
    ("read newcomer", "SUCCESS"),
    ("duplicate create", "ENTRY_ALREADY_EXISTS"),
    ("modify known", "SUCCESS"),
    ("modify unknown", "NO_SUCH_OBJECT"),
    ("delete other", "SUCCESS"),
    ("read deleted", "NO_SUCH_OBJECT"),
    ("base scope search", "SUCCESS"),
    ("write from cut-off side", "UNAVAILABLE"),
    ("write after heal", "SUCCESS"),
]


class TestResultCodeRegression:
    def test_result_codes_unchanged_across_refactor(self):
        """The canned matrix pins the monolith's observable behaviour."""
        udr, profiles = build_udr(config=UDRConfig(seed=7))
        assert run_request_matrix(udr, profiles) == EXPECTED

    def test_result_codes_identical_with_cache_disabled(self):
        """The fast path is an optimisation, never a behaviour change."""
        cached_udr, cached_profiles = build_udr(config=UDRConfig(seed=7))
        plain_udr, plain_profiles = build_udr(config=UDRConfig(
            location_cache_enabled=False, seed=7))
        assert run_request_matrix(cached_udr, cached_profiles) == \
            run_request_matrix(plain_udr, plain_profiles)

    def test_result_codes_identical_with_batched_metrics(self):
        batched_udr, batched_profiles = build_udr(config=UDRConfig(
            metrics_batch_size=64, seed=7))
        assert run_request_matrix(batched_udr, batched_profiles) == EXPECTED


# -- the batch path's own canned matrix ----------------------------------------------


def run_batch_request_matrix(udr, profiles):
    """Drive canned mixed-priority batches; return the result-code names.

    The first batch mixes all three priority classes (and so exercises the
    weighted dequeue's reordering); the second depends on the first batch's
    state; the third reproduces the prefer-consistency partition failure
    through the batch path.
    """
    known, other, modified = profiles[0], profiles[1], profiles[2]
    generator = SubscriberGenerator(udr.config.regions, seed=987)
    newcomer = generator.generate_one()
    fe, ps = ClientType.APPLICATION_FE, ClientType.PROVISIONING
    home = fe_site_for(udr, known)
    remote = next(site for site in udr.topology.sites
                  if site.region.name != known.home_region)

    def dn(profile):
        return SubscriberSchema.subscriber_dn(profile.identities.imsi)

    first = [
        ("read known imsi", BatchItem(SearchRequest(dn=dn(known)), fe, home)),
        ("read unknown imsi", BatchItem(SearchRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999")), fe, home)),
        ("bulk create newcomer", BatchItem(
            AddRequest(dn=dn(newcomer), attributes=newcomer.to_record()),
            ps, home, priority=Priority.BULK)),
        ("duplicate create", BatchItem(
            AddRequest(dn=dn(known), attributes=known.to_record()), ps, home)),
        ("modify known", BatchItem(
            ModifyRequest(dn=dn(modified), changes={"servingMsc": "msc-1"}),
            ps, home)),
        ("modify unknown", BatchItem(
            ModifyRequest(dn=SubscriberSchema.subscriber_dn("999999999999999"),
                          changes={"servingMsc": "x"}), ps, home)),
        ("bulk delete other", BatchItem(DeleteRequest(dn=dn(other)), ps, home,
                                        priority=Priority.BULK)),
        ("base scope search", BatchItem(SearchRequest(
            dn=SubscriberSchema.BASE_DN, filter_text="(objectClass=*)"),
            fe, home)),
    ]
    second = [
        ("read newcomer", BatchItem(SearchRequest(dn=dn(newcomer)),
                                    fe, home)),
        ("read deleted", BatchItem(SearchRequest(dn=dn(other)), fe, home)),
        ("repeat read (cache hit path)", BatchItem(
            SearchRequest(dn=dn(known)), fe, home)),
    ]
    codes = []
    for batch in (first, second):
        responses = run_to_completion(
            udr, udr.execute_batch([item for _label, item in batch]))
        codes.extend((label, response.result_code.name)
                     for (label, _item), response in zip(batch, responses))

    region = udr.topology.region(known.home_region)
    partition = NetworkPartition.splitting_regions(udr.topology, region)
    udr.network.apply_partition(partition)
    cut_off = [BatchItem(ModifyRequest(dn=dn(known),
                                       changes={"svcBarPremium": True}),
                         ps, remote)]
    responses = run_to_completion(udr, udr.execute_batch(cut_off))
    codes.append(("write from cut-off side", responses[0].result_code.name))
    udr.network.heal_partition(partition)
    responses = run_to_completion(udr, udr.execute_batch(cut_off))
    codes.append(("write after heal", responses[0].result_code.name))
    return codes


BATCH_EXPECTED = [
    ("read known imsi", "SUCCESS"),
    ("read unknown imsi", "NO_SUCH_OBJECT"),
    ("bulk create newcomer", "SUCCESS"),
    ("duplicate create", "ENTRY_ALREADY_EXISTS"),
    ("modify known", "SUCCESS"),
    ("modify unknown", "NO_SUCH_OBJECT"),
    ("bulk delete other", "SUCCESS"),
    ("base scope search", "SUCCESS"),
    ("read newcomer", "SUCCESS"),
    ("read deleted", "NO_SUCH_OBJECT"),
    ("repeat read (cache hit path)", "SUCCESS"),
    ("write from cut-off side", "UNAVAILABLE"),
    ("write after heal", "SUCCESS"),
]


def crash_master_of(udr, profile):
    """Crash the master element holding ``profile``; returns its name."""
    element = udr.deployment.authoritative_lookup(
        "imsi", profile.identities.imsi)
    master = udr.deployment.replica_set_of_element(element).master_element_name
    udr.crash_element(master)
    return master


class TestBatchResultCodeRegression:
    def test_mixed_priority_batch_codes(self):
        udr, profiles = build_udr(config=UDRConfig(seed=7))
        assert run_batch_request_matrix(udr, profiles) == BATCH_EXPECTED

    def test_mixed_priority_batch_codes_with_retry_policy(self):
        """Retries only act on transient codes: the canned matrix's business
        failures (unknown identity, duplicate create...) are untouched, and
        the partition row still exhausts to UNAVAILABLE."""
        udr, profiles = build_udr(config=UDRConfig(
            seed=7, retry_policy=RetryPolicy(max_retries=1,
                                             backoff_tick=0.01)))
        assert run_batch_request_matrix(udr, profiles) == BATCH_EXPECTED

    def test_retry_exhaustion_yields_unavailable(self):
        policy = RetryPolicy(max_retries=2, backoff_tick=0.01)
        udr, profiles = build_udr(config=UDRConfig(seed=7,
                                                   retry_policy=policy))
        profile = profiles[0]
        crash_master_of(udr, profile)
        # A provisioning client may not read from a slave, and nobody
        # promotes a new master: every retry fails the same way.
        item = BatchItem(
            SearchRequest(dn=SubscriberSchema.subscriber_dn(
                profile.identities.imsi)),
            ClientType.PROVISIONING, fe_site_for(udr, profile))
        responses = run_to_completion(udr, udr.execute_batch([item]))
        assert responses[0].result_code is ResultCode.UNAVAILABLE
        assert udr.metrics.counter("batch.retries") == policy.max_retries
        assert udr.metrics.counter("batch.retry_exhausted") == 1
        assert udr.metrics.counter("batch.retry_succeeded") == 0

    def test_post_commit_replication_failure_is_not_retried(self):
        """A synchronous-replication shortfall surfaces *after* the intra-SE
        commit: retrying would re-drive a non-idempotent write against its
        own first attempt (a DELETE would come back NO_SUCH_OBJECT).  The
        batch path must answer the sequential code, UNAVAILABLE, unretried."""
        from repro.core import ReplicationMode
        config_kwargs = dict(
            seed=7, replication_mode=ReplicationMode.QUORUM)
        seq_udr, seq_profiles = build_udr(config=UDRConfig(**config_kwargs))
        bat_udr, _ = build_udr(config=UDRConfig(
            retry_policy=RetryPolicy(max_retries=2, backoff_tick=0.01),
            **config_kwargs))
        profile = seq_profiles[0]

        def delete_item(udr):
            element = udr.deployment.authoritative_lookup(
                "imsi", profile.identities.imsi)
            replica_set = udr.deployment.replica_set_of_element(element)
            slave = replica_set.slave_names()[0]
            udr.crash_element(slave)  # quorum of 2 is now impossible
            return BatchItem(
                DeleteRequest(dn=SubscriberSchema.subscriber_dn(
                    profile.identities.imsi)),
                ClientType.PROVISIONING, fe_site_for(udr, profile))

        sequential = run_to_completion(
            seq_udr, seq_udr.execute(delete_item(seq_udr).request,
                                     ClientType.PROVISIONING,
                                     fe_site_for(seq_udr, profile)))
        batched = run_to_completion(
            bat_udr, bat_udr.execute_batch([delete_item(bat_udr)]))
        assert sequential.result_code is ResultCode.UNAVAILABLE
        assert batched[0].result_code is ResultCode.UNAVAILABLE
        assert bat_udr.metrics.counter("batch.retries") == 0

    def test_fail_over_mid_batch_relocates_via_invalidated_cache(self):
        """A fail-over between attempts must be picked up by the retry: the
        first attempt uses the (stale) cached location and fails against the
        crashed master; the fail-over invalidates the cache; the retry
        re-locates through the locator and succeeds on the new master."""
        udr, profiles = build_udr(config=UDRConfig(
            seed=7, retry_policy=RetryPolicy(max_retries=1,
                                             backoff_tick=4.0)))
        profile = profiles[0]
        site = fe_site_for(udr, profile)
        request = SearchRequest(dn=SubscriberSchema.subscriber_dn(
            profile.identities.imsi))
        # Warm the serving PoA's cache, then crash the master un-failed-over.
        run_to_completion(udr, udr.execute(
            request, ClientType.APPLICATION_FE, site))
        master = crash_master_of(udr, profile)
        poa = next(p for p in udr.points_of_access if p.site == site)
        cache = udr.location_caches.cache(poa.name)
        assert cache.get("imsi", profile.identities.imsi) is not None
        lookups_before = poa.locator.stats.lookups
        invalidations_before = cache.stats.invalidations

        def fail_over_later():
            yield udr.sim.timeout(1.0)  # within the 4 s retry backoff
            udr.fail_over(master)

        udr.sim.process(fail_over_later())
        item = BatchItem(request, ClientType.PROVISIONING, site)
        responses = run_to_completion(udr, udr.execute_batch([item]))
        assert responses[0].result_code is ResultCode.SUCCESS
        assert responses[0].attempts == 1, \
            "the response reports the retry the batch pipeline spent"
        assert udr.metrics.counter("batch.retries") == 1
        assert udr.metrics.counter("batch.retry_succeeded") == 1
        assert cache.stats.invalidations > invalidations_before, \
            "the fail-over dropped the stale cached location"
        assert poa.locator.stats.lookups == lookups_before + 1, \
            "the retry re-resolved through the locator, not the cache"
