"""Regression guard: the staged pipeline answers a canned request matrix
with exactly the result codes the monolithic ``execute()`` produced, and
the location-cache fast path never changes a result code."""

import pytest

from repro.core import ClientType, UDRConfig
from repro.ldap import (
    AddRequest,
    DeleteRequest,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SubscriberSchema,
)
from repro.net import NetworkPartition
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion


def run_request_matrix(udr, profiles):
    """Drive a fixed request sequence; return the result-code names."""
    known = profiles[0]
    other = profiles[1]
    generator = SubscriberGenerator(udr.config.regions, seed=987)
    newcomer = generator.generate_one()
    fe, ps = ClientType.APPLICATION_FE, ClientType.PROVISIONING
    home = fe_site_for(udr, known)
    remote = next(site for site in udr.topology.sites
                  if site.region.name != known.home_region)

    def dn(profile):
        return SubscriberSchema.subscriber_dn(profile.identities.imsi)

    matrix = [
        ("read known imsi", fe, home, SearchRequest(dn=dn(known))),
        ("repeat read (cache hit path)", fe, home,
         SearchRequest(dn=dn(known))),
        ("read by msisdn filter", fe, home, SearchRequest(
            dn=SubscriberSchema.BASE_DN,
            filter_text=f"(msisdn={known.identities.msisdn})")),
        ("read unknown imsi", fe, home, SearchRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"))),
        ("create newcomer", ps, home, AddRequest(
            dn=dn(newcomer), attributes=newcomer.to_record())),
        ("read newcomer", fe, home, SearchRequest(dn=dn(newcomer))),
        ("duplicate create", ps, home, AddRequest(
            dn=dn(known), attributes=known.to_record())),
        ("modify known", fe, home, ModifyRequest(
            dn=dn(known), changes={"servingMsc": "msc-1"})),
        ("modify unknown", ps, home, ModifyRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"),
            changes={"servingMsc": "x"})),
        ("delete other", ps, home, DeleteRequest(dn=dn(other))),
        ("read deleted", fe, home, SearchRequest(dn=dn(other))),
        ("unsupported scope search", fe, home, SearchRequest(
            dn=SubscriberSchema.BASE_DN, filter_text="(objectClass=*)")),
    ]
    codes = []
    for label, client, site, request in matrix:
        response = run_to_completion(udr, udr.execute(request, client, site))
        codes.append((label, response.result_code.name))

    # Partition the known subscriber's home region away and write from the
    # wrong side (the paper's prefer-consistency failure), then heal.
    region = udr.topology.region(known.home_region)
    partition = NetworkPartition.splitting_regions(udr.topology, region)
    udr.network.apply_partition(partition)
    response = run_to_completion(udr, udr.execute(
        ModifyRequest(dn=dn(known), changes={"svcBarPremium": True}),
        ClientType.PROVISIONING, remote))
    codes.append(("write from cut-off side", response.result_code.name))
    udr.network.heal_partition(partition)
    response = run_to_completion(udr, udr.execute(
        ModifyRequest(dn=dn(known), changes={"svcBarPremium": True}),
        ClientType.PROVISIONING, remote))
    codes.append(("write after heal", response.result_code.name))
    return codes


EXPECTED = [
    ("read known imsi", "SUCCESS"),
    ("repeat read (cache hit path)", "SUCCESS"),
    ("read by msisdn filter", "SUCCESS"),
    ("read unknown imsi", "NO_SUCH_OBJECT"),
    ("create newcomer", "SUCCESS"),
    ("read newcomer", "SUCCESS"),
    ("duplicate create", "ENTRY_ALREADY_EXISTS"),
    ("modify known", "SUCCESS"),
    ("modify unknown", "NO_SUCH_OBJECT"),
    ("delete other", "SUCCESS"),
    ("read deleted", "NO_SUCH_OBJECT"),
    ("unsupported scope search", "UNWILLING_TO_PERFORM"),
    ("write from cut-off side", "UNAVAILABLE"),
    ("write after heal", "SUCCESS"),
]


class TestResultCodeRegression:
    def test_result_codes_unchanged_across_refactor(self):
        """The canned matrix pins the monolith's observable behaviour."""
        udr, profiles = build_udr(config=UDRConfig(seed=7))
        assert run_request_matrix(udr, profiles) == EXPECTED

    def test_result_codes_identical_with_cache_disabled(self):
        """The fast path is an optimisation, never a behaviour change."""
        cached_udr, cached_profiles = build_udr(config=UDRConfig(seed=7))
        plain_udr, plain_profiles = build_udr(config=UDRConfig(
            location_cache_enabled=False, seed=7))
        assert run_request_matrix(cached_udr, cached_profiles) == \
            run_request_matrix(plain_udr, plain_profiles)

    def test_result_codes_identical_with_batched_metrics(self):
        batched_udr, batched_profiles = build_udr(config=UDRConfig(
            metrics_batch_size=64, seed=7))
        assert run_request_matrix(batched_udr, batched_profiles) == EXPECTED
