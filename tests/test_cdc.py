"""The CDC plane: WAL-tap change stream, audit history, replay property.

Pins the PR 8 contracts:

* the :class:`~repro.cdc.stream.ChangeStream` folds each logical commit
  exactly once (origin filter + per-partition ``commit_seq`` dedupe), in
  the master's serialisation order, across replication applies, re-applied
  records and fail-over;
* ``pause``/``resume`` loses nothing (the mux's retention bound pins the
  tapped logs, see ``test_mux_policies``) and drains in order;
* **replay == state**: replaying a partition's event stream -- full, or
  the suffix past any checkpoint -- into a store reproduces the master
  copy's exact live state (hypothesis property);
* the :class:`~repro.cdc.history.HistoryStore` answers who/what/when per
  mutation, resolves identities, caps per-record trails, and keeps
  answering past WAL truncation;
* ``Session.history`` surfaces the trail end-to-end and fails loudly when
  the CDC plane is off.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.operations import IDENTITY_TYPES, Write
from repro.cdc import (
    ChangeStream,
    HistoryStore,
    IDENTITY_ATTRIBUTES,
    replay_events,
)
from repro.core import ClientType, UDRConfig
from repro.core.config import CdcPolicy
from repro.replication import AsyncReplicationChannel
from repro.storage import RecordStore
from repro.storage.records import TOMBSTONE

from tests.conftest import build_udr, fe_site_for, run_to_completion
from tests.helpers import build_replicated_partition, master_write, run_process


def tapped_stream(replica_set, **kwargs):
    """A stream subscribed to every member copy of one replica set."""
    stream = ChangeStream(**kwargs)
    for _, copy in replica_set.members():
        stream.tap(0, copy)
    return stream


def master_delete(replica_set, key, timestamp=0.0):
    copy = replica_set.master_copy
    tx = copy.transactions.begin()
    tx.delete(key)
    return tx.commit(timestamp=timestamp)


class TestChangeStream:
    def test_folds_commits_in_master_order(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        for value in range(4):
            master_write(replica_set, f"sub-{value % 2}", {"v": value},
                         timestamp=float(value))
        events = stream.events(0)
        assert [e.commit_seq for e in events] == [1, 2, 3, 4]
        assert all(e.origin == replica_set.master_copy.transactions.name
                   for e in events)
        assert [e.timestamp for e in events] == [0.0, 1.0, 2.0, 3.0]
        assert stream.checkpoint(0) == 4

    def test_replication_apply_is_not_double_folded(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        master_write(replica_set, "sub-1", {"v": 1})
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        shipped = run_process(sim, channel.ship_once())
        assert shipped == 1
        assert replica_set.copy_on("se-1").store.contains("sub-1")
        # The slave's WAL notified the stream, but the record's origin is
        # the master's, so the slave tap filtered it: one event, no dupes.
        assert stream.events_folded == 1
        assert len(stream.events(0)) == 1

    def test_redelivered_commit_seq_is_skipped(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        record = master_write(replica_set, "sub-1", {"v": 1})
        # Re-deliver the same logical commit on the master's own log (same
        # origin, same commit_seq): the dedupe line drops it.
        replica_set.master_copy.wal.append_record(record)
        assert stream.events_folded == 1
        assert stream.duplicates_skipped == 1

    def test_survives_fail_over(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        master_write(replica_set, "sub-1", {"v": 1})
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        run_process(sim, channel.ship_once())
        replica_set.set_master("se-1")
        master_write(replica_set, "sub-1", {"v": 2})
        events = stream.events(0)
        assert [e.commit_seq for e in events] == [1, 2]
        # The promoted copy commits under its own name; no re-tap needed.
        assert events[0].origin != events[1].origin
        assert events[1].origin == \
            replica_set.copy_on("se-1").transactions.name

    def test_pause_resume_drains_in_order_without_gaps(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        master_write(replica_set, "sub-1", {"v": 0})
        stream.pause()
        for value in range(1, 4):
            master_write(replica_set, f"sub-{value}", {"v": value})
        assert stream.events_folded == 1, "paused stream folds nothing"
        stream.resume()
        assert [e.commit_seq for e in stream.events(0)] == [1, 2, 3, 4]
        assert stream.gap_records_lost == 0
        assert stream.duplicates_skipped == 0

    def test_consumers_run_per_event(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        seen = []
        stream.subscribe(seen.append)
        master_write(replica_set, "sub-1", {"v": 1})
        master_write(replica_set, "sub-2", {"v": 2})
        assert [e.commit_seq for e in seen] == [1, 2]

    def test_events_since_index_arithmetic_and_trim_fallback(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set, retention_events=3)
        for value in range(6):
            master_write(replica_set, f"sub-{value}", {"v": value})
        # Retention kept the last three events (seq 4, 5, 6).
        assert [e.commit_seq for e in stream.events(0)] == [4, 5, 6]
        assert stream.events_evicted > 0
        assert [e.commit_seq for e in stream.events_since(0, 4)] == [5, 6]
        assert stream.events_since(0, 6) == []
        # A checkpoint before the retained prefix returns everything left.
        assert [e.commit_seq for e in stream.events_since(0, 1)] == [4, 5, 6]

    def test_close_stops_folding(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        master_write(replica_set, "sub-1", {"v": 1})
        stream.close()
        master_write(replica_set, "sub-2", {"v": 2})
        assert stream.events_folded == 1

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            ChangeStream(retention_events=0)


# ---------------------------------------------------------------- replay

replay_keys = st.sampled_from([f"sub-{i}" for i in range(5)])
replay_values = st.integers(0, 99)
replay_ops = st.lists(
    st.tuples(replay_keys, replay_values, st.booleans()),
    min_size=1, max_size=25)


def _live_state(store):
    return {key: store.read_committed(key) for key in store.keys()}


class TestReplayProperty:
    @settings(max_examples=30, deadline=None)
    @given(ops=replay_ops, data=st.data())
    def test_replay_from_any_checkpoint_reproduces_store_state(
            self, ops, data):
        """replay == state: the full stream, or any checkpoint's suffix
        on top of a prefix-replayed store, lands on the master's exact
        live state -- and nothing in between is order-sensitive."""
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        for key, value, is_delete in ops:
            if is_delete:
                master_delete(replica_set, key)
            else:
                master_write(replica_set, key, {"v": value})
        events = stream.events(0)
        assert [e.commit_seq for e in events] == \
            list(range(1, len(ops) + 1))
        master_state = _live_state(replica_set.master_copy.store)

        full = RecordStore("replay-full")
        replay_events(events, full)
        assert _live_state(full) == master_state

        cut = data.draw(st.integers(0, len(events)), label="checkpoint")
        resumed = RecordStore("replay-resumed")
        replay_events(events[:cut], resumed)
        checkpoint = events[cut - 1].commit_seq if cut else 0
        replay_events(stream.events_since(0, checkpoint), resumed)
        assert _live_state(resumed) == master_state

    @settings(max_examples=15, deadline=None)
    @given(ops=replay_ops)
    def test_redelivery_is_idempotent_by_commit_seq(self, ops):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        records = []
        for key, value, is_delete in ops:
            if is_delete:
                records.append(master_delete(replica_set, key))
            else:
                records.append(master_write(replica_set, key, {"v": value}))
        folded = stream.events_folded
        for record in records:  # a full re-delivery of the log
            replica_set.master_copy.wal.append_record(record)
        assert stream.events_folded == folded
        assert stream.duplicates_skipped == len(records)


# ---------------------------------------------------------------- history

class TestHistoryStore:
    def build_trail(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        history = HistoryStore(stream)
        master_write(replica_set, "sub-1",
                     {"imsi": "123", "plan": "gold", "msc": "a"},
                     timestamp=1.0)
        master_write(replica_set, "sub-1",
                     {"imsi": "123", "plan": "silver"}, timestamp=2.0)
        master_delete(replica_set, "sub-1", timestamp=3.0)
        return replica_set, history

    def test_who_what_when_per_mutation(self):
        replica_set, history = self.build_trail()
        trail = history.history("sub-1")
        assert [entry.kind for entry in trail] == \
            ["create", "modify", "delete"]
        who = replica_set.master_copy.transactions.name
        assert all(entry.origin == who for entry in trail)
        assert [entry.timestamp for entry in trail] == [1.0, 2.0, 3.0]
        # The "what": attribute-level diffs, removals marked None.
        assert trail[0].changes == {"imsi": "123", "plan": "gold",
                                    "msc": "a"}
        assert trail[1].changes == {"plan": "silver", "msc": None}
        assert trail[2].changes is None
        assert history.latest_value("sub-1") is TOMBSTONE

    def test_identity_resolution(self):
        _, history = self.build_trail()
        assert history.resolve("imsi", "123") == "sub-1"
        assert history.resolve("imsi", "999") is None
        assert len(history.history_of_identity("imsi", "123")) == 3
        assert history.history_of_identity("imsi", "999") == []
        assert dict(history.identity_entries()) == \
            {("imsi", "123"): "sub-1"}

    def test_per_record_cap_evicts_oldest(self):
        _, _, _, _, replica_set = build_replicated_partition()
        stream = tapped_stream(replica_set)
        history = HistoryStore(stream, max_entries_per_record=2)
        for value in range(5):
            master_write(replica_set, "sub-1", {"v": value})
        trail = history.history("sub-1")
        assert len(trail) == 2
        assert [entry.commit_seq for entry in trail] == [4, 5]
        assert history.entries_evicted == 3
        with pytest.raises(ValueError):
            HistoryStore(max_entries_per_record=0)

    def test_history_survives_wal_truncation(self):
        replica_set, history = self.build_trail()
        wal = replica_set.master_copy.wal
        wal.mark_durable(wal.last_lsn)
        assert wal.truncate_through(wal.last_lsn) == 3
        # The log is gone; the audit trail is not.
        assert len(history.history("sub-1")) == 3

    def test_identity_attributes_mirror_api_identity_types(self):
        # cdc duplicates the tuple to stay import-cycle-free; this is the
        # tripwire that keeps the two in lock-step.
        assert IDENTITY_ATTRIBUTES == IDENTITY_TYPES


# ---------------------------------------------------------------- session

class TestSessionHistory:
    def test_history_end_to_end(self):
        config = UDRConfig(seed=7, cdc=CdcPolicy())
        udr, profiles = build_udr(config, subscribers=20)
        profile = profiles[0]
        imsi = profile.identities.imsi
        client = udr.attach("fe@test", fe_site_for(udr, profile),
                            client_type=ClientType.PROVISIONING)
        with client.session() as session:
            response = run_to_completion(
                udr, session.call(Write(imsi, {"servingMsc": "msc-9"})))
            assert response.ok
            trail = session.history(imsi)
        assert trail, "the load + the write must both be audited"
        assert trail[0].kind == "create"
        assert trail[-1].kind == "modify"
        assert trail[-1].changes.get("servingMsc") == "msc-9"
        # "Who": the commit's originating copy names the master element.
        replica_sets = udr.replica_sets.values()
        masters = {rs.master_element_name for rs in replica_sets}
        assert any(trail[-1].origin.startswith(master)
                   for master in masters)
        assert udr.metrics.counter("api.history.queries") == 1

    def test_history_requires_cdc(self):
        udr, profiles = build_udr(UDRConfig(seed=7), subscribers=5)
        client = udr.attach("fe@test", udr.topology.sites[0])
        with client.session() as session:
            with pytest.raises(RuntimeError, match="audit history"):
                session.history(profiles[0].identities.imsi)

    def test_reconciliation_status_disabled_without_reconciler(self):
        udr, _ = build_udr(UDRConfig(seed=7), subscribers=5)
        client = udr.attach("fe@test", udr.topology.sites[0])
        with client.session() as session:
            assert session.reconciliation_status() == {"enabled": False}
