"""Unit tests for replica sets and the replication modes."""

import pytest

from repro.net import NetworkPartition
from repro.replication import (
    AsyncReplicationChannel,
    DualInSequenceReplicator,
    MasterUnreachable,
    MultiMasterCoordinator,
    NotEnoughReplicas,
    QuorumReplicator,
    ReplicationError,
    ReplicationMux,
)
from repro.storage import DataPartition, ReplicaRole, StorageElement

from tests.helpers import (
    build_replicated_partition,
    flip_slave_record,
    master_write,
    run_process,
)


class TestReplicaSet:
    def test_master_and_slaves_identified(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        assert replica_set.master_element_name == "se-0"
        assert replica_set.slave_names() == ["se-1", "se-2"]
        assert replica_set.replication_factor == 3

    def test_duplicate_member_rejected(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        with pytest.raises(ReplicationError):
            replica_set.add_member(elements[0], ReplicaRole.SECONDARY)

    def test_second_master_rejected(self):
        _, _, _, _, replica_set = build_replicated_partition()
        extra = StorageElement("se-9")
        with pytest.raises(ReplicationError):
            replica_set.add_member(extra, ReplicaRole.PRIMARY)

    def test_failover_promotes_most_up_to_date_slave(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        # Only se-2 has applied the write.
        replica_set.copy_on("se-2").transactions.apply_log_record(record)
        elements[0].crash()
        new_master = replica_set.fail_over()
        assert new_master == "se-2"
        assert replica_set.master_copy.is_primary
        assert replica_set.failovers == 1

    def test_failover_with_no_candidates_fails(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        for element in elements:
            element.crash()
        with pytest.raises(ReplicationError):
            replica_set.fail_over()

    def test_set_master_switches_roles(self):
        _, _, _, _, replica_set = build_replicated_partition()
        replica_set.set_master("se-1")
        assert replica_set.master_element_name == "se-1"
        assert not replica_set.copy_on("se-0").is_primary

    def test_master_available_reflects_element_state(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        assert replica_set.master_available()
        elements[0].crash()
        assert not replica_set.master_available()


class TestAsyncReplication:
    def test_writes_eventually_reach_slaves(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        channels = [AsyncReplicationChannel(sim, network, replica_set, slave)
                    for slave in replica_set.slave_names()]
        for channel in channels:
            channel.start()
        for value in range(3):
            master_write(replica_set, "sub-1", {"v": value},
                         timestamp=sim.now)
        sim.run(until=5.0)
        for channel in channels:
            channel.stop()
        for slave in replica_set.slave_names():
            assert replica_set.copy_on(slave).store.read_committed("sub-1") == \
                {"v": 2}

    def test_serialisation_order_preserved_on_slave(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        channel.start()
        for value in range(5):
            master_write(replica_set, f"sub-{value % 2}", {"v": value})
        sim.run(until=2.0)
        channel.stop()
        master_versions = [
            v.commit_seq
            for v in replica_set.master_copy.store.versions("sub-0")]
        slave_versions = [
            v.commit_seq
            for v in replica_set.copy_on("se-1").store.versions("sub-0")]
        assert master_versions == slave_versions

    def test_lag_grows_during_partition_and_recovers(self):
        sim, network, topology, elements, replica_set = \
            build_replicated_partition()
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        channel.start()
        partition = NetworkPartition.isolating(elements[0].site)
        network.apply_partition(partition)
        master_write(replica_set, "sub-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=2.0)
        assert channel.lag().records == 1
        assert channel.stalled_rounds > 0
        network.heal_partition(partition)
        sim.run(until=4.0)
        channel.stop()
        assert channel.lag().in_sync
        assert replica_set.copy_on("se-1").store.contains("sub-1")

    def test_channel_skips_records_slave_already_has(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replica_set.copy_on("se-1").transactions.apply_log_record(record)
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        shipped = run_process(sim, channel.ship_once())
        assert shipped == 0
        assert len(replica_set.copy_on("se-1").store.versions("sub-1")) == 1

    def test_invalid_channel_parameters_rejected(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        with pytest.raises(ValueError):
            AsyncReplicationChannel(sim, network, replica_set, "se-1",
                                    interval=0)
        with pytest.raises(ValueError):
            AsyncReplicationChannel(sim, network, replica_set, "se-1",
                                    batch_limit=0)

    def test_stalls_when_slave_element_down(self):
        sim, network, _, elements, replica_set = build_replicated_partition()
        elements[1].crash()
        master_write(replica_set, "sub-1", {"v": 1})
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        shipped = run_process(sim, channel.ship_once())
        assert shipped == 0
        assert channel.stalled_rounds == 1

    def test_stop_drains_the_parked_poll(self):
        """stop() interrupts the process out of its pending interval
        timeout: a stopped channel neither ships one last round at the
        next tick nor stays alive in the event queue."""
        sim, network, _, _, replica_set = build_replicated_partition()
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        process = channel.start()
        sim.run(until=0.01)  # inside the first 50 ms interval
        master_write(replica_set, "sub-1", {"v": 1}, timestamp=sim.now)
        channel.stop()
        sim.run()  # drains to an empty queue instead of looping forever
        assert not process.is_alive
        assert channel.records_shipped == 0, \
            "the pending write must not ship after stop()"
        assert not replica_set.copy_on("se-1").store.contains("sub-1")

    def test_pending_records_and_apply_primitives(self):
        """The mux-facing primitives: pending excludes already-applied
        records, apply advances the cursor, and apply is idempotent."""
        sim, network, _, _, replica_set = build_replicated_partition()
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        first = master_write(replica_set, "sub-1", {"v": 1})
        second = master_write(replica_set, "sub-2", {"v": 2})
        assert channel.has_backlog()
        master_name, pending = channel.pending_records()
        assert master_name == "se-0"
        assert [r.lsn for r in pending] == [first.lsn, second.lsn]
        assert channel.apply(master_name, pending) == 2
        assert not channel.has_backlog()
        assert channel.pending_records() == ("se-0", [])
        # Idempotent: re-applying the same shipment installs nothing.
        assert channel.apply(master_name, pending) == 0
        versions = replica_set.copy_on("se-1").store.versions("sub-1")
        assert len(versions) == 1

    def test_pending_skips_records_slave_already_applied(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replica_set.copy_on("se-1").transactions.apply_log_record(record)
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        _master, pending = channel.pending_records()
        assert pending == []
        assert not channel.has_backlog(), "the cursor advanced past it"

    def test_byte_flipped_slave_is_invisible_to_replication(self):
        """Silent corruption does not re-open the shipping window: the
        flipped version keeps its commit_seq, so the channel sees nothing
        to ship -- which is exactly why the CDC reconciler exists."""
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1, "msc": "a"})
        replica_set.copy_on("se-1").transactions.apply_log_record(record)
        flip_slave_record(replica_set, "se-1", "sub-1", seed=5)
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        assert channel.pending_records() == ("se-0", [])
        assert not channel.has_backlog(), "the cursor advanced past it"
        assert replica_set.copy_on("se-1").store.read_committed("sub-1") != \
            replica_set.master_copy.store.read_committed("sub-1")

    def test_inactive_when_slave_is_master(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        channel = AsyncReplicationChannel(sim, network, replica_set, "se-1")
        replica_set.set_master("se-1")
        assert channel.endpoints() is None
        assert channel.link_sites() is None
        assert not channel.has_backlog()
        assert channel.pending_records() == (None, [])


class TestReplicationMux:
    def build_two_partition_link(self, seed=1):
        """Two partitions whose masters live at site 0 and slaves at site 1:
        both channels ship over the same (site, site) link."""
        sim, network, topology, elements, replica_set = \
            build_replicated_partition(seed=seed, num_elements=2,
                                       replication_factor=2)
        partition_b = DataPartition(1)
        from repro.replication import ReplicaSet
        replica_set_b = ReplicaSet(partition_b)
        replica_set_b.add_member(elements[0], ReplicaRole.PRIMARY)
        replica_set_b.add_member(elements[1], ReplicaRole.SECONDARY)
        channels = [
            AsyncReplicationChannel(sim, network, replica_set, "se-1"),
            AsyncReplicationChannel(sim, network, replica_set_b, "se-1"),
        ]
        mux = ReplicationMux(sim, network, ship_linger=0.05)
        for channel in channels:
            mux.attach(channel)
        return sim, network, (replica_set, replica_set_b), channels, mux

    def test_idle_mux_schedules_no_events(self):
        sim, network, _sets, _channels, mux = self.build_two_partition_link()
        mux.start()
        sim.run(until=5.0)
        assert mux.wakeups == 0
        assert network.stats.total_messages() == 0

    def test_two_partitions_share_one_transfer(self):
        sim, network, (set_a, set_b), channels, mux = \
            self.build_two_partition_link()
        mux.start()
        master_write(set_a, "a-1", {"v": 1}, timestamp=sim.now)
        master_write(set_b, "b-1", {"v": 2}, timestamp=sim.now)
        sim.run(until=0.2)
        assert network.stats.total_messages() == 1, \
            "both partitions' records ride one shipment over the link"
        assert mux.wakeups == 1
        assert set_a.copy_on("se-1").store.contains("a-1")
        assert set_b.copy_on("se-1").store.contains("b-1")

    def test_commits_ship_on_the_interval_grid(self):
        """Freshness contract: the mux ships at the same instants the
        polling loops would have ticked (multiples of the interval)."""
        sim, network, (set_a, _b), channels, mux = \
            self.build_two_partition_link()
        mux.start()
        sim.run(until=0.12)  # between grid points
        master_write(set_a, "a-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=0.149)
        assert channels[0].records_shipped == 0, "not before the grid point"
        sim.run(until=0.2)
        assert channels[0].records_shipped == 1

    def test_stall_retries_until_partition_heals(self):
        sim, network, (set_a, _b), channels, mux = \
            self.build_two_partition_link()
        mux.start()
        partition = NetworkPartition.isolating(set_a.element("se-0").site)
        network.apply_partition(partition)
        master_write(set_a, "a-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=0.4)
        assert channels[0].stalled_rounds > 0
        assert not set_a.copy_on("se-1").store.contains("a-1")
        network.heal_partition(partition)
        sim.run(until=0.6)
        assert set_a.copy_on("se-1").store.contains("a-1")
        assert channels[0].lag().in_sync

    def test_stop_disarms_pending_rounds(self):
        sim, network, (set_a, _b), channels, mux = \
            self.build_two_partition_link()
        mux.start()
        master_write(set_a, "a-1", {"v": 1}, timestamp=sim.now)
        mux.stop()
        sim.run(until=1.0)
        assert mux.wakeups == 0
        assert network.stats.total_messages() == 0

    def test_rebind_follows_a_new_master(self):
        """After a promotion the mux listens on the new master's log; the
        promoted element's own channel goes inactive (it *is* the master)
        and nothing ships to it twice."""
        sim, network, (set_a, _b), channels, mux = \
            self.build_two_partition_link()
        mux.start()
        record = master_write(set_a, "a-1", {"v": 1}, timestamp=sim.now)
        sim.run(until=0.2)  # shipped to se-1
        set_a.set_master("se-1")
        mux.rebind()
        # Commits on the new master must not wake anything: the only other
        # member (se-0) has no channel, and se-1's channel is now inactive.
        wakeups_before = mux.wakeups
        tx = set_a.copy_on("se-1").transactions.begin()
        tx.write("a-2", {"v": 2})
        tx.commit(timestamp=sim.now)
        sim.run(until=0.5)
        assert mux.wakeups == wakeups_before
        versions = set_a.copy_on("se-1").store.versions("a-1")
        assert len(versions) == 1, "no duplicate apply after re-binding"


class TestDualInSequence:
    def test_commit_reaches_two_replicas(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = DualInSequenceReplicator(sim, network, replica_set)
        outcome = run_process(sim, replicator.replicate_commit(record))
        assert outcome.fully_replicated
        assert outcome.synchronous_latency > 0
        slaves_with_data = [
            name for name in replica_set.slave_names()
            if replica_set.copy_on(name).store.contains("sub-1")]
        assert len(slaves_with_data) == 1, "dual-in-sequence touches one slave"

    def test_degraded_commit_when_all_slaves_unreachable(self):
        sim, network, _, elements, replica_set = build_replicated_partition()
        network.apply_partition(
            NetworkPartition.isolating(elements[0].site))
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = DualInSequenceReplicator(sim, network, replica_set,
                                              accept_single_replica=True)
        outcome = run_process(sim, replicator.replicate_commit(record))
        assert outcome.degraded
        assert outcome.replicas_updated == 1
        assert replicator.degraded_commits == 1

    def test_strict_mode_raises_when_unreplicated(self):
        sim, network, _, elements, replica_set = build_replicated_partition()
        for element in elements[1:]:
            element.crash()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = DualInSequenceReplicator(sim, network, replica_set,
                                              accept_single_replica=False)
        with pytest.raises(NotEnoughReplicas):
            run_process(sim, replicator.replicate_commit(record))


class TestQuorumReplication:
    def test_quorum_of_two_acks_master_plus_one_slave(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = QuorumReplicator(sim, network, replica_set, write_quorum=2)
        write = run_process(sim, replicator.replicate_commit(record))
        assert write.satisfied
        assert write.acks >= 2

    def test_full_quorum_reaches_every_slave(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = QuorumReplicator(sim, network, replica_set, write_quorum=3)
        write = run_process(sim, replicator.replicate_commit(record))
        assert write.acks == 3
        for slave in replica_set.slave_names():
            assert replica_set.copy_on(slave).store.contains("sub-1")

    def test_quorum_fails_when_not_enough_replicas_reachable(self):
        sim, network, _, elements, replica_set = build_replicated_partition()
        for element in elements[1:]:
            element.crash()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = QuorumReplicator(sim, network, replica_set, write_quorum=2)
        with pytest.raises(NotEnoughReplicas):
            run_process(sim, replicator.replicate_commit(record))
        assert replicator.failed_commits == 1

    def test_quorum_latency_exceeds_async(self):
        """The quorum pays a backbone round trip that async commits skip."""
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = QuorumReplicator(sim, network, replica_set, write_quorum=2)
        start = sim.now
        run_process(sim, replicator.replicate_commit(record))
        assert sim.now - start > 0.001, "at least one backbone RTT"

    def test_write_quorum_validation(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        with pytest.raises(ValueError):
            QuorumReplicator(sim, network, replica_set, write_quorum=0)

    def test_quorum_of_one_is_immediate(self):
        sim, network, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicator = QuorumReplicator(sim, network, replica_set, write_quorum=1)
        write = run_process(sim, replicator.replicate_commit(record))
        assert write.satisfied
        assert write.acks == 1


class TestMultiMaster:
    def test_master_preferred_when_reachable(self):
        _, _, _, _, replica_set = build_replicated_partition()
        coordinator = MultiMasterCoordinator(replica_set, enabled=True)
        chosen = coordinator.choose_write_element(["se-0", "se-1", "se-2"])
        assert chosen == "se-0"
        assert not coordinator.has_diverged

    def test_fallback_to_reachable_slave_when_enabled(self):
        _, _, _, _, replica_set = build_replicated_partition()
        coordinator = MultiMasterCoordinator(replica_set, enabled=True)
        chosen = coordinator.choose_write_element(["se-1", "se-2"],
                                                  timestamp=12.0)
        assert chosen in {"se-1", "se-2"}
        assert coordinator.has_diverged
        assert coordinator.stats.degraded_writes == 1
        record = coordinator.divergence[chosen]
        assert record.first_write_at == 12.0

    def test_single_master_mode_rejects_writes(self):
        """The paper's default: favour Consistency, fail the write."""
        _, _, _, _, replica_set = build_replicated_partition()
        coordinator = MultiMasterCoordinator(replica_set, enabled=False)
        with pytest.raises(MasterUnreachable):
            coordinator.choose_write_element(["se-1", "se-2"])
        assert coordinator.stats.rejected_writes == 1

    def test_no_reachable_copy_fails_even_multimaster(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        coordinator = MultiMasterCoordinator(replica_set, enabled=True)
        with pytest.raises(MasterUnreachable):
            coordinator.choose_write_element([])

    def test_crashed_master_falls_back(self):
        _, _, _, elements, replica_set = build_replicated_partition()
        elements[0].crash()
        coordinator = MultiMasterCoordinator(replica_set, enabled=True)
        chosen = coordinator.choose_write_element(["se-0", "se-1", "se-2"])
        assert chosen != "se-0"

    def test_clear_divergence(self):
        _, _, _, _, replica_set = build_replicated_partition()
        coordinator = MultiMasterCoordinator(replica_set, enabled=True)
        coordinator.choose_write_element(["se-1"])
        coordinator.clear_divergence()
        assert not coordinator.has_diverged
