"""Unit tests for the subscriber data model and generator."""

import pytest

from repro.directory import IdentityType
from repro.subscriber import (
    IdentitySet,
    ServiceProfile,
    SubscriberGenerator,
    SubscriberProfile,
    format_imsi,
    format_msisdn,
)


class TestIdentities:
    def test_imsi_has_fifteen_digits(self):
        imsi = format_imsi("spain", 42)
        assert len(imsi) == 15
        assert imsi.startswith("214")

    def test_unknown_region_uses_default_mcc(self):
        assert format_imsi("atlantis", 1).startswith("999")

    def test_msisdn_uses_country_code(self):
        assert format_msisdn("sweden", 7).startswith("+46")

    def test_identity_set_mapping_covers_all_types(self):
        identities = IdentitySet.for_serial("spain", 5)
        mapping = identities.as_mapping()
        assert set(mapping) == {IdentityType.IMSI, IdentityType.MSISDN,
                                IdentityType.IMPU, IdentityType.IMPI}
        assert mapping[IdentityType.IMSI] == identities.imsi

    def test_identity_sets_are_unique_per_serial(self):
        a = IdentitySet.for_serial("spain", 1)
        b = IdentitySet.for_serial("spain", 2)
        assert a.imsi != b.imsi
        assert a.msisdn != b.msisdn


class TestServiceProfile:
    def test_roundtrip_through_attributes(self):
        services = ServiceProfile(barring_premium_numbers=True,
                                  call_forwarding_unconditional="+34911",
                                  ims_enabled=True,
                                  operator_services=["vpn"])
        restored = ServiceProfile.from_attributes(services.to_attributes())
        assert restored == services

    def test_enabled_service_count(self):
        assert ServiceProfile().enabled_service_count() == 0
        services = ServiceProfile(barring_premium_numbers=True,
                                  ims_enabled=True)
        assert services.enabled_service_count() == 2


class TestSubscriberProfile:
    def make_profile(self, region="spain"):
        return SubscriberProfile(
            identities=IdentitySet.for_serial(region, 9),
            home_region=region,
            authentication_key="k" * 16,
        )

    def test_key_is_imsi_based(self):
        profile = self.make_profile()
        assert profile.key == f"sub:{profile.identities.imsi}"

    def test_record_roundtrip(self):
        profile = self.make_profile()
        restored = SubscriberProfile.from_record(profile.to_record())
        assert restored.identities == profile.identities
        assert restored.home_region == profile.home_region
        assert restored.services == profile.services

    def test_current_region_defaults_to_home(self):
        profile = self.make_profile("sweden")
        assert profile.current_region == "sweden"
        assert not profile.roaming()

    def test_with_location_marks_roaming(self):
        profile = self.make_profile("spain").with_location("germany", "msc-7")
        assert profile.roaming()
        assert profile.serving_msc == "msc-7"

    def test_record_contains_service_attributes(self):
        record = self.make_profile().to_record()
        assert "svcRoamingAllowed" in record
        assert record["subscriberStatus"] == "active"


class TestSubscriberGenerator:
    def test_generation_is_deterministic(self):
        first = SubscriberGenerator(["spain", "sweden"], seed=5).generate(20)
        second = SubscriberGenerator(["spain", "sweden"], seed=5).generate(20)
        assert [p.identities.imsi for p in first] == \
            [p.identities.imsi for p in second]

    def test_different_seeds_differ(self):
        a = SubscriberGenerator(["spain"], seed=1).generate(10)
        b = SubscriberGenerator(["spain"], seed=2).generate(10)
        assert [p.services.ims_enabled for p in a] != \
            [p.services.ims_enabled for p in b] or \
            [p.home_region for p in a] != [p.home_region for p in b] or \
            [p.organisation for p in a] != [p.organisation for p in b]

    def test_region_weights_respected(self):
        generator = SubscriberGenerator(
            ["spain", "sweden"], seed=3,
            region_weights={"spain": 9.0, "sweden": 1.0})
        profiles = generator.generate(500)
        counts = generator.region_distribution(profiles)
        assert counts["spain"] > 3 * counts["sweden"]

    def test_ims_share_roughly_respected(self):
        generator = SubscriberGenerator(["spain"], seed=4, ims_share=0.5)
        profiles = generator.generate(600)
        share = sum(p.services.ims_enabled for p in profiles) / len(profiles)
        assert 0.4 < share < 0.6

    def test_identities_are_unique_across_population(self):
        profiles = SubscriberGenerator(["spain", "sweden"], seed=6).generate(300)
        imsis = {p.identities.imsi for p in profiles}
        assert len(imsis) == 300

    def test_stream_matches_list_generation(self):
        streamed = list(SubscriberGenerator(["spain"], seed=8).stream(15))
        listed = SubscriberGenerator(["spain"], seed=8).generate(15)
        assert [p.key for p in streamed] == [p.key for p in listed]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SubscriberGenerator([], seed=1)
        with pytest.raises(ValueError):
            SubscriberGenerator(["spain"], ims_share=1.5)
        with pytest.raises(ValueError):
            SubscriberGenerator(["spain"], organisation_share=-0.1)
        with pytest.raises(ValueError):
            SubscriberGenerator(["spain"],
                                region_weights={"spain": 0.0})
        with pytest.raises(ValueError):
            SubscriberGenerator(["spain"]).generate(-1)
