"""Unit tests for the LDAP front door: DNs, filters, schema, server plans."""

import pytest

from repro.directory import IdentityType
from repro.ldap import (
    AddRequest,
    DeleteRequest,
    DistinguishedName,
    FilterError,
    LdapServer,
    LdapServerPool,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SearchScope,
    SubscriberSchema,
    parse_filter,
)
from repro.ldap.server import PlanKind


class TestDistinguishedName:
    def test_parse_and_format_roundtrip(self):
        text = "imsi=214070000000001,ou=subscribers,dc=udr,dc=operator,dc=example"
        dn = DistinguishedName.parse(text)
        assert str(dn) == text
        assert dn.leaf_attribute == "imsi"
        assert dn.leaf_value == "214070000000001"
        assert len(dn) == 5

    def test_attribute_types_case_insensitive(self):
        assert DistinguishedName.parse("IMSI=1,OU=subscribers") == \
            DistinguishedName.parse("imsi=1,ou=subscribers")

    def test_escaped_comma_in_value(self):
        dn = DistinguishedName.parse(r"cn=Doe\, John,ou=people")
        assert dn.leaf_value == "Doe, John"
        assert DistinguishedName.parse(str(dn)) == dn

    def test_parent_and_child(self):
        base = DistinguishedName.parse("ou=subscribers,dc=udr")
        child = base.child("imsi", "1")
        assert child.parent() == base
        assert child.is_descendant_of(base)
        assert not base.is_descendant_of(child)
        assert DistinguishedName.parse("dc=udr").parent() is None

    def test_malformed_dns_rejected(self):
        for bad in ("", "   ", "nocomponent", "=value", "attr=", "a=1,,b=2"):
            with pytest.raises(ValueError):
                DistinguishedName.parse(bad)

    def test_dn_hashable(self):
        a = DistinguishedName.parse("imsi=1,ou=subscribers")
        b = DistinguishedName.parse("imsi=1,ou=subscribers")
        assert len({a, b}) == 1

    def test_every_escapable_char_roundtrips(self):
        from repro.ldap.dn import _ESCAPABLE
        for char in sorted(_ESCAPABLE):
            value = f"a{char}b"
            dn = DistinguishedName.parse("ou=subscribers").child("cn", value)
            parsed = DistinguishedName.parse(str(dn))
            assert parsed == dn, f"round-trip broke on {char!r}"
            assert parsed.leaf_value == value

    def test_depth_and_ancestors(self):
        dn = DistinguishedName.parse("imsi=1,ou=subscribers,dc=udr,dc=ex")
        assert dn.depth == 4
        ancestors = dn.ancestors()
        assert [str(a) for a in ancestors] == [
            "ou=subscribers,dc=udr,dc=ex", "dc=udr,dc=ex", "dc=ex"]
        assert ancestors[0] == dn.parent()
        assert DistinguishedName.parse("dc=ex").ancestors() == []


class TestFilters:
    def test_equality_filter(self):
        parsed = parse_filter("(msisdn=+34600000001)")
        assert parsed.matches({"msisdn": "+34600000001"})
        assert not parsed.matches({"msisdn": "+34600000002"})
        assert not parsed.matches({})

    def test_equality_on_multi_valued_attribute(self):
        parsed = parse_filter("(impu=sip:alice@ims)")
        assert parsed.matches({"impu": ["sip:bob@ims", "sip:alice@ims"]})

    def test_presence_filter(self):
        parsed = parse_filter("(servingMsc=*)")
        assert parsed.matches({"servingmsc": "msc-1"})
        assert not parsed.matches({"servingmsc": None})

    def test_substring_filter(self):
        parsed = parse_filter("(impu=sip:*@ims.example.net)")
        assert parsed.matches({"impu": "sip:user1@ims.example.net"})
        assert not parsed.matches({"impu": "tel:+34600"})

    def test_and_or_not_composition(self):
        parsed = parse_filter(
            "(&(objectClass=subscriber)(|(imsi=1)(msisdn=2))(!(status=barred)))")
        assert parsed.matches({"objectclass": "subscriber", "imsi": "1",
                               "status": "active"})
        assert not parsed.matches({"objectclass": "subscriber", "imsi": "1",
                                   "status": "barred"})
        assert not parsed.matches({"objectclass": "subscriber", "imsi": "9",
                                   "msisdn": "9", "status": "active"})

    def test_case_insensitive_attribute_matching(self):
        assert parse_filter("(MSISDN=1)").matches({"msisdn": "1"})

    def test_referenced_attributes_collected(self):
        parsed = parse_filter("(&(imsi=1)(!(msisdn=2)))")
        assert set(parsed.referenced_attributes()) == {"imsi", "msisdn"}

    def test_malformed_filters_rejected(self):
        for bad in ("", "imsi=1", "(imsi=1", "(&)", "((imsi=1))",
                    "(imsi=1)x", "(&(imsi=1)", "(noequals)"):
            with pytest.raises(FilterError):
                parse_filter(bad)


class TestSchema:
    def test_subscriber_dn_construction(self):
        dn = SubscriberSchema.subscriber_dn("214070000000001")
        assert SubscriberSchema.is_subscriber_dn(dn)
        assert SubscriberSchema.identity_from_dn(dn) == \
            (IdentityType.IMSI, "214070000000001")

    def test_non_subscriber_dn_rejected(self):
        assert not SubscriberSchema.is_subscriber_dn(
            DistinguishedName.parse("ou=subscribers,dc=udr,dc=operator,dc=example"))
        assert SubscriberSchema.identity_from_dn(
            DistinguishedName.parse("cn=admin,dc=udr")) is None

    def test_identity_from_assertions_prefers_imsi(self):
        identity = SubscriberSchema.identity_from_assertions(
            {"msisdn": "+34600", "imsi": "21407"})
        assert identity == (IdentityType.IMSI, "21407")

    def test_identity_from_assertions_none_when_absent(self):
        assert SubscriberSchema.identity_from_assertions(
            {"objectclass": "subscriber"}) is None

    def test_validate_new_entry(self):
        good = {"imsi": "1", "msisdn": "2", "homeRegion": "spain",
                "subscriberStatus": "active"}
        assert SubscriberSchema.validate_new_entry(good) == []
        problems = SubscriberSchema.validate_new_entry({"imsi": "1"})
        assert len(problems) >= 2
        bad_status = dict(good, subscriberStatus="weird")
        assert SubscriberSchema.validate_new_entry(bad_status)

    def test_front_end_writable_attributes(self):
        assert SubscriberSchema.front_end_may_write({"servingMsc": "msc-1"})
        assert not SubscriberSchema.front_end_may_write({"svcBarPremium": True})


class TestLdapServerPlanning:
    def setup_method(self):
        self.server = LdapServer("ldap-0")
        self.dn = SubscriberSchema.subscriber_dn("214070000000001")

    def test_base_search_plans_read(self):
        plan = self.server.plan(SearchRequest(dn=self.dn))
        assert plan.ok
        assert plan.kind is PlanKind.READ
        assert plan.identity_type == IdentityType.IMSI
        assert plan.identity_value == "214070000000001"

    def test_filter_search_extracts_identity(self):
        request = SearchRequest(
            dn=SubscriberSchema.BASE_DN,
            filter_text="(&(objectClass=udrSubscriber)(msisdn=+34600000001))")
        plan = self.server.plan(request)
        assert plan.ok
        assert plan.identity_type == IdentityType.MSISDN
        assert plan.identity_value == "+34600000001"

    def test_unindexed_search_plans_scoped_search(self):
        # An identity-less filter used to be rejected outright; it now plans
        # a scoped SEARCH served by the DIT index / scan path.
        request = SearchRequest(dn=SubscriberSchema.BASE_DN,
                                filter_text="(homeRegion=spain)")
        plan = self.server.plan(request)
        assert plan.ok
        assert plan.kind is PlanKind.SEARCH
        assert plan.base_dn == SubscriberSchema.BASE_DN
        assert plan.scope is SearchScope.BASE
        assert plan.filter_text == "(homeRegion=spain)"
        assert self.server.translation_errors == 0

    def test_search_plan_respects_scope(self):
        # Regression: ``_plan_search`` used to ignore ``request.scope`` and
        # collapse every search on a subscriber DN to a single-entry READ.
        dn = SubscriberSchema.subscriber_dn("214070000000001")
        base = self.server.plan(SearchRequest(dn=dn,
                                              scope=SearchScope.BASE))
        assert base.ok and base.kind is PlanKind.READ
        one = self.server.plan(SearchRequest(dn=dn,
                                             scope=SearchScope.ONE_LEVEL))
        assert one.ok and one.kind is PlanKind.SEARCH
        assert one.scope is SearchScope.ONE_LEVEL
        sub = self.server.plan(SearchRequest(dn=dn,
                                             scope=SearchScope.SUBTREE))
        assert sub.ok and sub.kind is PlanKind.SEARCH
        assert sub.scope is SearchScope.SUBTREE
        assert sub.base_dn == dn

    def test_search_plan_rejects_malformed_filter(self):
        plan = self.server.plan(SearchRequest(
            dn=SubscriberSchema.BASE_DN, filter_text="(broken"))
        assert not plan.ok
        assert plan.error is ResultCode.UNWILLING_TO_PERFORM

    def test_search_plan_rejects_bad_page_size(self):
        plan = self.server.plan(SearchRequest(
            dn=SubscriberSchema.BASE_DN, scope=SearchScope.SUBTREE,
            filter_text="(homeRegion=spain)", page_size=0))
        assert not plan.ok
        assert plan.error is ResultCode.UNWILLING_TO_PERFORM

    def test_modify_plans_update(self):
        plan = self.server.plan(ModifyRequest(dn=self.dn,
                                              changes={"servingMsc": "msc-3"}))
        assert plan.ok
        assert plan.kind is PlanKind.UPDATE
        assert plan.changes == {"servingMsc": "msc-3"}
        assert plan.is_write

    def test_empty_modify_rejected(self):
        plan = self.server.plan(ModifyRequest(dn=self.dn, changes={}))
        assert not plan.ok

    def test_add_requires_valid_schema(self):
        attributes = {"imsi": "214070000000001", "msisdn": "+34600",
                      "homeRegion": "spain", "subscriberStatus": "active"}
        plan = self.server.plan(AddRequest(dn=self.dn, attributes=attributes))
        assert plan.ok
        assert plan.kind is PlanKind.CREATE
        missing = self.server.plan(AddRequest(dn=self.dn,
                                              attributes={"imsi": "1"}))
        assert not missing.ok

    def test_add_with_mismatched_dn_rejected(self):
        attributes = {"imsi": "999", "msisdn": "+34600",
                      "homeRegion": "spain", "subscriberStatus": "active"}
        plan = self.server.plan(AddRequest(dn=self.dn, attributes=attributes))
        assert not plan.ok

    def test_delete_plans_delete(self):
        plan = self.server.plan(DeleteRequest(dn=self.dn))
        assert plan.ok
        assert plan.kind is PlanKind.DELETE

    def test_modify_of_non_subscriber_dn_rejected(self):
        plan = self.server.plan(ModifyRequest(
            dn=DistinguishedName.parse("cn=admin,dc=udr"), changes={"a": 1}))
        assert plan.error is ResultCode.NO_SUCH_OBJECT

    def test_operations_counted(self):
        self.server.plan(SearchRequest(dn=self.dn))
        self.server.plan(DeleteRequest(dn=self.dn))
        assert self.server.operations_processed == 2


class TestLdapServerCapacity:
    def test_paper_capacity_default(self):
        server = LdapServer("ldap-0")
        assert server.capacity_ops_per_second == 1_000_000
        assert server.service_time() == pytest.approx(1e-6)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LdapServer("x", capacity_ops_per_second=0)

    def test_pool_aggregates_capacity(self):
        pool = LdapServerPool.of_size("cluster-0", 32)
        assert len(pool) == 32
        assert pool.capacity_ops_per_second == 32_000_000
        assert pool.service_time() == pytest.approx(1e-6)

    def test_pool_round_robin(self):
        pool = LdapServerPool.of_size("cluster-0", 3)
        picks = [pool.next_server().name for _ in range(6)]
        assert picks[:3] == picks[3:]
        assert len(set(picks)) == 3

    def test_pool_scale_up(self):
        pool = LdapServerPool.of_size("cluster-0", 2)
        pool.add_server(LdapServer("cluster-0-ldap-extra"))
        assert len(pool) == 3

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            LdapServerPool.of_size("x", 0)
        with pytest.raises(RuntimeError):
            LdapServerPool("empty").next_server()
