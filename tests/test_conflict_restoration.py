"""Unit tests for divergence detection, conflict resolution and restoration."""

import pytest

from repro.replication import (
    AttributeMergeResolver,
    ConsistencyRestoration,
    LastWriterWinsResolver,
    PreferOriginResolver,
    detect_conflicts,
)
from repro.replication.conflict import ConflictResolver, KeyConflict
from repro.storage import TOMBSTONE

from tests.helpers import build_replicated_partition, master_write


def write_on(replica_set, element_name, key, value):
    """Commit a write directly on a specific copy (simulating multi-master)."""
    copy = replica_set.copy_on(element_name)
    tx = copy.transactions.begin()
    tx.write(key, value)
    return tx.commit()


def replicate_to_all(replica_set, record):
    for name in replica_set.slave_names():
        replica_set.copy_on(name).transactions.apply_log_record(record)


def copies_of(replica_set):
    return {name: replica_set.copy_on(name)
            for name in replica_set.member_names}


class TestConflictDetection:
    def test_identical_copies_have_no_conflicts(self):
        _, _, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicate_to_all(replica_set, record)
        assert detect_conflicts(copies_of(replica_set)) == []

    def test_replication_lag_is_not_a_conflict(self):
        _, _, _, _, replica_set = build_replicated_partition()
        master_write(replica_set, "sub-1", {"v": 1})
        # Slaves have seen nothing; that is lag, not a fork.
        assert detect_conflicts(copies_of(replica_set)) == []

    def test_forked_writes_are_detected(self):
        _, _, _, _, replica_set = build_replicated_partition()
        base = master_write(replica_set, "sub-1", {"v": 0})
        replicate_to_all(replica_set, base)
        # Partition: both sides accept a different write for the same key.
        write_on(replica_set, "se-0", "sub-1", {"v": "master-side"})
        write_on(replica_set, "se-1", "sub-1", {"v": "slave-side"})
        conflicts = detect_conflicts(copies_of(replica_set))
        assert len(conflicts) == 1
        assert conflicts[0].key == "sub-1"
        assert set(conflicts[0].versions) >= {"se-0", "se-1"}

    def test_forks_on_different_keys_do_not_conflict(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-a", {"v": 1})
        write_on(replica_set, "se-1", "sub-b", {"v": 2})
        assert detect_conflicts(copies_of(replica_set)) == []

    def test_fork_converging_to_same_value_is_ignored(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-1", {"v": "same"})
        write_on(replica_set, "se-1", "sub-1", {"v": "same"})
        assert detect_conflicts(copies_of(replica_set)) == []

    def test_single_copy_never_conflicts(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-1", {"v": 1})
        assert detect_conflicts({"se-0": replica_set.copy_on("se-0")}) == []

    def test_distinct_values_listed(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-1", {"v": 1})
        write_on(replica_set, "se-1", "sub-1", {"v": 2})
        conflict = detect_conflicts(copies_of(replica_set))[0]
        assert len(conflict.distinct_values()) == 2


class TestResolvers:
    def make_conflict(self, replica_set):
        write_on(replica_set, "se-0", "sub-1", {"barred": True})
        write_on(replica_set, "se-1", "sub-1", {"forwarding": "+3466"})
        write_on(replica_set, "se-1", "sub-1", {"forwarding": "+3467"})
        return detect_conflicts(copies_of(replica_set))[0]

    def test_last_writer_wins_prefers_higher_commit_seq(self):
        _, _, _, _, replica_set = build_replicated_partition()
        conflict = self.make_conflict(replica_set)
        value = LastWriterWinsResolver().resolve(conflict)
        assert value == {"forwarding": "+3467"}

    def test_prefer_origin_keeps_designated_copy(self):
        _, _, _, _, replica_set = build_replicated_partition()
        conflict = self.make_conflict(replica_set)
        value = PreferOriginResolver("se-0").resolve(conflict)
        assert value == {"barred": True}

    def test_prefer_origin_falls_back_when_absent(self):
        _, _, _, _, replica_set = build_replicated_partition()
        conflict = self.make_conflict(replica_set)
        value = PreferOriginResolver("se-9").resolve(conflict)
        assert value == {"forwarding": "+3467"}

    def test_attribute_merge_keeps_both_sides(self):
        _, _, _, _, replica_set = build_replicated_partition()
        conflict = self.make_conflict(replica_set)
        value = AttributeMergeResolver().resolve(conflict)
        assert value == {"barred": True, "forwarding": "+3467"}

    def test_attribute_merge_with_non_map_values_uses_tiebreak(self):
        conflict = KeyConflict(key="k", versions={})
        from repro.storage.records import RecordVersion
        conflict.versions = {
            "a": RecordVersion("k", "scalar", commit_seq=5,
                               transaction_id=1, origin="a"),
            "b": RecordVersion("k", {"x": 1}, commit_seq=3,
                               transaction_id=1, origin="b"),
        }
        assert AttributeMergeResolver().resolve(conflict) == "scalar"

    def test_attribute_merge_of_tombstones_uses_tiebreak(self):
        from repro.storage.records import RecordVersion
        conflict = KeyConflict(key="k", versions={
            "a": RecordVersion("k", TOMBSTONE, commit_seq=2,
                               transaction_id=1, origin="a"),
            "b": RecordVersion("k", TOMBSTONE, commit_seq=4,
                               transaction_id=1, origin="b"),
        })
        assert AttributeMergeResolver().resolve(conflict) is TOMBSTONE

    def test_abstract_resolver_rejects_use(self):
        with pytest.raises(NotImplementedError):
            ConflictResolver().resolve(None)


class TestRestoration:
    def test_clean_replica_set_reports_clean(self):
        _, _, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1})
        replicate_to_all(replica_set, record)
        report = ConsistencyRestoration().restore(replica_set)
        assert report.clean
        assert report.keys_scanned == 1

    def test_conflicts_resolved_and_copies_converge(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-1", {"v": "a"})
        write_on(replica_set, "se-1", "sub-1", {"v": "b"})
        report = ConsistencyRestoration().restore(replica_set)
        assert report.conflicts_found == 1
        assert report.conflicts_resolved == 1
        values = {replica_set.copy_on(name).store.read_committed("sub-1")["v"]
                  for name in replica_set.member_names}
        assert len(values) == 1, "all copies hold the same survivor"

    def test_lagging_copies_caught_up(self):
        _, _, _, _, replica_set = build_replicated_partition()
        master_write(replica_set, "sub-1", {"v": 1})
        report = ConsistencyRestoration().restore(replica_set)
        assert report.lagging_keys_repaired == 1
        for name in replica_set.member_names:
            assert replica_set.copy_on(name).store.contains("sub-1")

    def test_restoration_work_grows_with_divergence(self):
        _, _, _, _, replica_set = build_replicated_partition()
        for index in range(10):
            write_on(replica_set, "se-0", f"sub-{index}", {"v": "a"})
            write_on(replica_set, "se-1", f"sub-{index}", {"v": "b"})
        report = ConsistencyRestoration().restore(replica_set)
        assert report.conflicts_found == 10
        assert report.estimated_duration > 0
        small_report = ConsistencyRestoration().restore(replica_set)
        assert small_report.conflicts_found == 0, "second run finds no work"

    def test_resolver_choice_recorded(self):
        _, _, _, _, replica_set = build_replicated_partition()
        report = ConsistencyRestoration(
            resolver=AttributeMergeResolver()).restore(replica_set)
        assert report.resolver_name == "attribute-merge"

    def test_merge_resolver_preserves_both_updates(self):
        _, _, _, _, replica_set = build_replicated_partition()
        write_on(replica_set, "se-0", "sub-1", {"barred": True})
        write_on(replica_set, "se-1", "sub-1", {"forwarding": "+34"})
        ConsistencyRestoration(resolver=AttributeMergeResolver()).restore(
            replica_set)
        merged = replica_set.master_copy.store.read_committed("sub-1")
        assert merged == {"barred": True, "forwarding": "+34"}
