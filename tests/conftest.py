"""Shared fixtures: a small UDR deployment with a loaded subscriber base."""

import pytest

from repro.core import ClientType, UDRConfig, UDRNetworkFunction
from repro.subscriber import SubscriberGenerator


def build_udr(config=None, subscribers=60, seed=7):
    """Build and start a small deployment with a loaded subscriber base."""
    config = config or UDRConfig(seed=seed)
    udr = UDRNetworkFunction(config)
    udr.start()
    generator = SubscriberGenerator(config.regions, seed=seed)
    profiles = generator.generate(subscribers)
    udr.load_subscriber_base(profiles)
    return udr, profiles


def run_to_completion(udr, generator):
    """Run a client generator (e.g. udr.execute(...)) until it finishes."""
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process, limit=udr.sim.now + 120.0)
    if not process.triggered:
        raise AssertionError("operation did not complete within 120 s of "
                             "simulated time")
    if not process.ok:
        raise process.exception
    return process.value


@pytest.fixture(scope="module")
def small_udr():
    """A module-scoped deployment for read-only inspection tests."""
    udr, profiles = build_udr()
    return udr, profiles


@pytest.fixture
def fresh_udr():
    """A function-scoped deployment for tests that mutate state."""
    udr, profiles = build_udr()
    return udr, profiles


@pytest.fixture
def client_site(fresh_udr):
    udr, _ = fresh_udr
    return udr.topology.sites[0]


def fe_site_for(udr, profile):
    """The site an FE serving this subscriber would use (current region)."""
    region = profile.current_region or profile.home_region
    for site in udr.topology.sites:
        if site.region.name == region:
            return site
    return udr.topology.sites[0]
