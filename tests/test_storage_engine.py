"""Unit tests for the MVCC record store, records and locks."""

import pytest

from repro.storage import (
    LockManager,
    LockMode,
    RecordNotFound,
    RecordStore,
    RecordVersion,
    TOMBSTONE,
    WriteConflict,
    record_size,
)
from repro.storage.engine import staleness
from repro.storage.records import merge_attributes


def version(key, value, seq, tx=1, origin="test"):
    return RecordVersion(key=key, value=value, commit_seq=seq,
                         transaction_id=tx, origin=origin)


class TestRecordStore:
    def test_read_latest_committed(self):
        store = RecordStore()
        store.apply_version(version("imsi-1", {"msisdn": "34600000001"}, 1))
        store.apply_version(version("imsi-1", {"msisdn": "34600000002"}, 2))
        assert store.read_committed("imsi-1") == {"msisdn": "34600000002"}

    def test_missing_key_raises(self):
        store = RecordStore()
        with pytest.raises(RecordNotFound):
            store.read_committed("missing")
        assert store.get("missing", default="x") == "x"

    def test_tombstone_hides_record(self):
        store = RecordStore()
        store.apply_version(version("k", {"a": 1}, 1))
        store.apply_version(version("k", TOMBSTONE, 2))
        with pytest.raises(RecordNotFound):
            store.read_committed("k")
        assert not store.contains("k")
        assert len(store) == 0

    def test_snapshot_read_as_of(self):
        store = RecordStore()
        store.apply_version(version("k", {"v": 1}, 1))
        store.apply_version(version("k", {"v": 2}, 5))
        store.apply_version(version("k", {"v": 3}, 9))
        assert store.as_of("k", 1) == {"v": 1}
        assert store.as_of("k", 7) == {"v": 2}
        assert store.as_of("k", 100) == {"v": 3}
        with pytest.raises(RecordNotFound):
            store.as_of("k", 0)

    def test_version_chain_preserved(self):
        store = RecordStore()
        for seq in range(1, 4):
            store.apply_version(version("k", {"v": seq}, seq))
        chain = store.versions("k")
        assert [v.commit_seq for v in chain] == [1, 2, 3]

    def test_last_applied_seq_tracks_max(self):
        store = RecordStore()
        store.apply_version(version("a", {"v": 1}, 3))
        store.apply_version(version("b", {"v": 1}, 2))
        assert store.last_applied_seq == 3

    def test_live_bytes_accounting(self):
        store = RecordStore()
        store.apply_version(version("k", {"name": "alice"}, 1))
        first = store.live_bytes
        assert first > 0
        store.apply_version(version("k", {"name": "alice", "extra": "x" * 100}, 2))
        assert store.live_bytes > first
        store.apply_version(version("k", TOMBSTONE, 3))
        assert store.live_bytes == 0

    def test_dirty_values_visible_until_cleared(self):
        store = RecordStore()
        store.register_dirty(7, "k", {"v": "uncommitted"})
        assert store.dirty_value("k") == {"v": "uncommitted"}
        store.clear_dirty(7, ["k"])
        assert store.dirty_value("k") is None

    def test_snapshot_and_restore(self):
        store = RecordStore()
        store.apply_version(version("a", {"v": 1}, 1))
        store.apply_version(version("b", {"v": 2}, 2))
        image = store.snapshot()
        store.apply_version(version("c", {"v": 3}, 3))
        store.restore(image, commit_seq=2)
        assert sorted(store.keys()) == ["a", "b"]
        assert store.last_applied_seq == 2
        assert not store.contains("c")

    def test_average_record_size(self):
        store = RecordStore()
        assert store.estimated_average_record_size() == 0.0
        store.apply_version(version("a", {"v": 1}, 1))
        assert store.estimated_average_record_size() == store.live_bytes

    def test_staleness_between_copies(self):
        master, slave = RecordStore("m"), RecordStore("s")
        for seq in range(1, 6):
            master.apply_version(version("k", {"v": seq}, seq))
        for seq in range(1, 3):
            slave.apply_version(version("k", {"v": seq}, seq))
        assert staleness(master, slave) == 3
        assert staleness(slave, master) == 0


class TestRecordHelpers:
    def test_record_size_grows_with_content(self):
        small = record_size({"msisdn": "346"})
        large = record_size({"msisdn": "346", "services": ["a"] * 50})
        assert large > small

    def test_record_size_of_tombstone_and_none(self):
        assert record_size(TOMBSTONE) == 16
        assert record_size(None) == 16

    def test_merge_attributes_updates_and_deletes(self):
        base = {"a": 1, "b": 2}
        merged = merge_attributes(base, {"b": None, "c": 3})
        assert merged == {"a": 1, "c": 3}
        assert base == {"a": 1, "b": 2}, "merge must not mutate the base"

    def test_merge_attributes_accepts_none_base(self):
        assert merge_attributes(None, {"a": 1}) == {"a": 1}

    def test_tombstone_is_falsy_singleton(self):
        from repro.storage.records import _Tombstone
        assert not TOMBSTONE
        assert _Tombstone() is TOMBSTONE


class TestLockManager:
    def test_exclusive_lock_conflicts(self):
        locks = LockManager()
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        with pytest.raises(WriteConflict):
            locks.acquire(2, "k", LockMode.EXCLUSIVE)
        assert locks.conflicts == 1

    def test_shared_locks_are_compatible(self):
        locks = LockManager()
        locks.acquire(1, "k", LockMode.SHARED)
        locks.acquire(2, "k", LockMode.SHARED)
        assert locks.holders("k") == {1, 2}

    def test_shared_then_exclusive_conflicts(self):
        locks = LockManager()
        locks.acquire(1, "k", LockMode.SHARED)
        with pytest.raises(WriteConflict):
            locks.acquire(2, "k", LockMode.EXCLUSIVE)

    def test_sole_holder_can_upgrade(self):
        locks = LockManager()
        locks.acquire(1, "k", LockMode.SHARED)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert locks.mode("k") is LockMode.EXCLUSIVE

    def test_release_all_frees_keys(self):
        locks = LockManager()
        locks.acquire(1, "a")
        locks.acquire(1, "b")
        locks.release_all(1)
        assert len(locks) == 0
        locks.acquire(2, "a")  # must not raise

    def test_release_unknown_transaction_is_noop(self):
        locks = LockManager()
        locks.release_all(99)
        assert len(locks) == 0

    def test_held_keys(self):
        locks = LockManager()
        locks.acquire(5, "x")
        locks.acquire(5, "y")
        assert locks.held_keys(5) == {"x", "y"}

    def test_mode_of_unlocked_key_raises(self):
        with pytest.raises(KeyError):
            LockManager().mode("nothing")
