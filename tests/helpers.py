"""Shared helpers for building small simulated deployments in tests."""

from repro.net import Network, make_multinational_topology
from repro.replication import ReplicaSet
from repro.sim import Simulation
from repro.storage import DataPartition, ReplicaRole, StorageElement


def build_replicated_partition(seed=1, num_elements=3, replication_factor=3,
                               subscriber_capacity=1_000_000):
    """One partition replicated across ``num_elements`` sites.

    Returns (sim, network, topology, elements, replica_set); element ``i``
    lives at site ``i`` of a three-country topology and element 0 holds the
    master copy.
    """
    sim = Simulation(seed=seed)
    topology = make_multinational_topology(("spain", "sweden", "germany"),
                                           sites_per_region=2)
    network = Network(sim, topology)
    sites = topology.sites
    partition = DataPartition(0)
    replica_set = ReplicaSet(partition)
    elements = []
    for index in range(num_elements):
        element = StorageElement(
            f"se-{index}", site=sites[index % len(sites)],
            subscriber_capacity=subscriber_capacity)
        role = ReplicaRole.PRIMARY if index == 0 else ReplicaRole.SECONDARY
        if index < replication_factor:
            replica_set.add_member(element, role)
        elements.append(element)
    return sim, network, topology, elements, replica_set


def master_write(replica_set, key, value, timestamp=0.0):
    """Commit one write on the replica set's master copy; returns the record."""
    copy = replica_set.master_copy
    tx = copy.transactions.begin()
    tx.write(key, value)
    return tx.commit(timestamp=timestamp)


def run_process(sim, generator):
    """Run a generator as a process to completion and return its value."""
    process = sim.process(generator)
    sim.run()
    if not process.ok:
        raise process.exception
    return process.value
