"""Shared helpers for building small simulated deployments in tests."""

from repro.net import Network, make_multinational_topology
from repro.replication import ReplicaSet
from repro.sim import Simulation
from repro.storage import DataPartition, ReplicaRole, StorageElement


def build_replicated_partition(seed=1, num_elements=3, replication_factor=3,
                               subscriber_capacity=1_000_000):
    """One partition replicated across ``num_elements`` sites.

    Returns (sim, network, topology, elements, replica_set); element ``i``
    lives at site ``i`` of a three-country topology and element 0 holds the
    master copy.
    """
    sim = Simulation(seed=seed)
    topology = make_multinational_topology(("spain", "sweden", "germany"),
                                           sites_per_region=2)
    network = Network(sim, topology)
    sites = topology.sites
    partition = DataPartition(0)
    replica_set = ReplicaSet(partition)
    elements = []
    for index in range(num_elements):
        element = StorageElement(
            f"se-{index}", site=sites[index % len(sites)],
            subscriber_capacity=subscriber_capacity)
        role = ReplicaRole.PRIMARY if index == 0 else ReplicaRole.SECONDARY
        if index < replication_factor:
            replica_set.add_member(element, role)
        elements.append(element)
    return sim, network, topology, elements, replica_set


def master_write(replica_set, key, value, timestamp=0.0):
    """Commit one write on the replica set's master copy; returns the record."""
    copy = replica_set.master_copy
    tx = copy.transactions.begin()
    tx.write(key, value)
    return tx.commit(timestamp=timestamp)


def run_process(sim, generator):
    """Run a generator as a process to completion and return its value."""
    process = sim.process(generator)
    sim.run()
    if not process.ok:
        raise process.exception
    return process.value


# -- seeded silent-corruption factories --------------------------------------------
#
# Shared by test_replication, test_cdc and test_reconciliation: every
# corruption in the suite is built here from an explicit seed, so a failing
# run replays bit-for-bit.

def corruption_rng(seed=11):
    """The deterministic victim-picking stream for corruption helpers."""
    import random
    return random.Random(seed)


def flip_slave_record(replica_set, slave_name, key, seed=11):
    """Byte-flip ``key``'s latest version on one slave copy (seeded)."""
    from repro.faults import flip_store_record
    store = replica_set.copy_on(slave_name).store
    assert flip_store_record(store, key, corruption_rng(seed)), \
        f"no versions of {key!r} on {slave_name}"
    return store.latest(key)


def site_of_slave(udr, partition_index=0, slave_offset=0):
    """The site name hosting one slave copy of a partition."""
    replica_set = udr.replica_sets[partition_index]
    slave = replica_set.slave_names()[slave_offset]
    return udr.elements[slave].site.name


def site_of_master(udr, partition_index=0):
    """The site name hosting the partition's current master copy."""
    replica_set = udr.replica_sets[partition_index]
    return udr.elements[replica_set.master_element_name].site.name


def make_corruption(udr, kind, partition_index=0, at=0.0, target_key=None):
    """A :class:`~repro.faults.SilentCorruption` aimed at a valid site.

    ``byte_flip`` and ``skip_apply`` need a slave at the site;
    ``locator_drop`` targets the site whose locator serves the master.
    """
    from repro.faults import SilentCorruption
    if kind == "locator_drop":
        site = site_of_master(udr, partition_index)
    else:
        site = site_of_slave(udr, partition_index)
    return SilentCorruption(site_name=site, partition_index=partition_index,
                            kind=kind, at=at, target_key=target_key)


def inject_corruption(udr, kind, partition_index=0, seed=11, target_key=None):
    """Build and immediately apply one corruption; returns the report."""
    from repro.faults import apply_corruption
    corruption = make_corruption(udr, kind, partition_index,
                                 target_key=target_key)
    return apply_corruption(udr, corruption, corruption_rng(seed))
