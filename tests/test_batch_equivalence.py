"""Batch-vs-sequential equivalence: the core correctness property of batched
admission.  For seeded random workloads, ``execute_batch`` must produce the
same result codes (in submission order) and leave the deployment in the same
final store/replica state as N sequential ``execute`` calls -- batching only
amortises cost, it never changes observable behaviour.  A second suite pins
the metric contract: one batch records the same counts as sequential
execution but flushes the metric batch exactly once, at batch end."""

import random

import pytest

from repro.core import (
    BatchItem,
    ClientType,
    DispatchMode,
    Priority,
    RetryPolicy,
    UDRConfig,
)
from repro.ldap import (
    AddRequest,
    DeleteRequest,
    ModifyRequest,
    SearchRequest,
    SubscriberSchema,
)
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion

SUBSCRIBERS = 48


def seeded_workload(udr, profiles, seed, operations=40):
    """A random but order-insensitive request mix.

    The priority dequeue reorders a batch across classes, so the workload
    avoids the only order-*sensitive* shapes: every subscriber receives at
    most one write, deleted subscribers are never otherwise addressed, and
    created subscribers are fresh (never read in the same run).  Everything
    else -- the op mix, targets, sites and client types -- is drawn at
    random from ``seed``.
    """
    rng = random.Random(seed)
    shuffled = list(profiles)
    rng.shuffle(shuffled)
    deletable = [shuffled.pop() for _ in range(6)]
    modifiable = [shuffled.pop() for _ in range(12)]
    readable = list(shuffled)
    fresh = SubscriberGenerator(udr.config.regions,
                                seed=seed + 9000).generate(8)

    def dn(profile):
        return SubscriberSchema.subscriber_dn(profile.identities.imsi)

    items = []
    for _ in range(operations):
        choice = rng.random()
        if choice < 0.5 or not (modifiable or deletable or fresh):
            profile = rng.choice(readable)
            items.append(BatchItem(SearchRequest(dn=dn(profile)),
                                   ClientType.APPLICATION_FE,
                                   fe_site_for(udr, profile)))
        elif choice < 0.75 and modifiable:
            profile = modifiable.pop()
            client = rng.choice([ClientType.APPLICATION_FE,
                                 ClientType.PROVISIONING])
            items.append(BatchItem(
                ModifyRequest(dn=dn(profile),
                              changes={"servingMsc": f"msc-{seed}"}),
                client, fe_site_for(udr, profile)))
        elif choice < 0.9 and fresh:
            profile = fresh.pop()
            items.append(BatchItem(
                AddRequest(dn=dn(profile), attributes=profile.to_record()),
                ClientType.PROVISIONING, udr.topology.sites[0]))
        elif deletable:
            profile = deletable.pop()
            items.append(BatchItem(DeleteRequest(dn=dn(profile)),
                                   ClientType.PROVISIONING,
                                   udr.topology.sites[0]))
        else:
            profile = rng.choice(readable)
            items.append(BatchItem(SearchRequest(dn=dn(profile)),
                                   ClientType.APPLICATION_FE,
                                   fe_site_for(udr, profile)))
    return items


def run_sequential(udr, items):
    codes = []
    for item in items:
        response = run_to_completion(
            udr, udr.execute(item.request, item.client_type,
                             item.client_site))
        codes.append(response.result_code.name)
    return codes


def run_batched(udr, items):
    responses = run_to_completion(udr, udr.execute_batch(items))
    return [response.result_code.name for response in responses]


def run_dispatched(udr, items, spacing=0.002):
    """Feed ``items`` as a timed arrival trace into the dispatcher.

    Arrivals are ``spacing`` seconds apart (inside the default linger
    budget, so waves really merge), and codes come back in submission
    order via each ticket's event.
    """
    tickets = []

    def arrivals():
        for item in items:
            yield udr.sim.timeout(spacing)
            tickets.append(udr.submit(item.request, item.client_type,
                                      item.client_site,
                                      priority=item.priority))

    run_to_completion(udr, arrivals())

    def wait_all():
        yield udr.sim.all_of([ticket.event for ticket in tickets])

    run_to_completion(udr, wait_all())
    return [ticket.event.value.result_code.name for ticket in tickets]


def store_state(udr):
    """Record values on every copy of every replica set, after quiescing.

    Commit sequence numbers and timestamps differ between the two runs (the
    batch spends less virtual time), so only the record *values* -- what a
    client could ever read -- are compared.
    """
    udr.sim.run_for(5.0)  # let asynchronous replication drain
    state = {}
    for set_name, replica_set in udr.replica_sets.items():
        for member in replica_set.member_names:
            copy = replica_set.copy_on(member)
            state[(set_name, member)] = {key: copy.store.get(key)
                                         for key in copy.store.keys()}
    return state


def identity_locations(udr, items):
    locations = {}
    for item in items:
        identity = SubscriberSchema.identity_from_dn(item.request.dn)
        if identity is None:
            continue
        identity_type, value = identity
        locations[(identity_type, value)] = \
            udr.deployment.authoritative_lookup(identity_type, value)
    return locations


def equivalence_pair(config_kwargs=None, seed=7):
    kwargs = dict(config_kwargs or {})
    sequential = build_udr(config=UDRConfig(seed=seed, **kwargs),
                           subscribers=SUBSCRIBERS, seed=seed)
    batched = build_udr(config=UDRConfig(seed=seed, **kwargs),
                        subscribers=SUBSCRIBERS, seed=seed)
    return sequential, batched


class TestBatchSequentialEquivalence:
    @pytest.mark.parametrize("workload_seed", [11, 23, 47])
    def test_random_workload_codes_and_state(self, workload_seed):
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair()
        items = seeded_workload(seq_udr, seq_profiles, workload_seed)
        sequential_codes = run_sequential(seq_udr, items)
        batched_codes = run_batched(bat_udr, items)
        assert batched_codes == sequential_codes
        assert store_state(bat_udr) == store_state(seq_udr)
        assert identity_locations(bat_udr, items) == \
            identity_locations(seq_udr, items)

    @pytest.mark.parametrize("batch_max_size", [1, 5, 64])
    def test_equivalence_across_wave_sizes(self, batch_max_size):
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            {"batch_max_size": batch_max_size})
        items = seeded_workload(seq_udr, seq_profiles, seed=31)
        assert run_batched(bat_udr, items) == run_sequential(seq_udr, items)
        assert store_state(bat_udr) == store_state(seq_udr)

    def test_equivalence_with_cache_disabled(self):
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            {"location_cache_enabled": False})
        items = seeded_workload(seq_udr, seq_profiles, seed=59)
        assert run_batched(bat_udr, items) == run_sequential(seq_udr, items)
        assert store_state(bat_udr) == store_state(seq_udr)

    def test_equivalence_with_retry_policy_on_healthy_deployment(self):
        """On a healthy deployment the retry stage never fires, so a retry
        policy must not perturb the equivalence property."""
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            {"retry_policy": RetryPolicy(max_retries=2)})
        items = seeded_workload(seq_udr, seq_profiles, seed=67)
        assert run_batched(bat_udr, items) == run_sequential(seq_udr, items)
        assert store_state(bat_udr) == store_state(seq_udr)
        assert bat_udr.metrics.counter("batch.retries") == 0

    def test_dependent_same_class_batch_matches_sequential(self):
        """Within one priority class admission order is submission order, so
        even *dependent* request chains -- create then read, create then
        duplicate create, delete then read of the same identity -- must
        match sequential execution: unknown identities are re-resolved at
        each request's own turn, not frozen at wave start."""
        (seq_udr, seq_profiles), (bat_udr, bat_profiles) = equivalence_pair()
        newcomer = SubscriberGenerator(seq_udr.config.regions,
                                       seed=4242).generate_one()
        victim = seq_profiles[0]

        def items_for(udr):
            site = udr.topology.sites[0]
            newcomer_dn = SubscriberSchema.subscriber_dn(
                newcomer.identities.imsi)
            victim_dn = SubscriberSchema.subscriber_dn(
                victim.identities.imsi)
            return [
                BatchItem(AddRequest(dn=newcomer_dn,
                                     attributes=newcomer.to_record()),
                          ClientType.PROVISIONING, site),
                BatchItem(SearchRequest(dn=newcomer_dn),
                          ClientType.PROVISIONING, site),
                BatchItem(AddRequest(dn=newcomer_dn,
                                     attributes=newcomer.to_record()),
                          ClientType.PROVISIONING, site),
                BatchItem(DeleteRequest(dn=victim_dn),
                          ClientType.PROVISIONING, site),
                BatchItem(SearchRequest(dn=victim_dn),
                          ClientType.PROVISIONING, site),
            ]

        sequential_codes = run_sequential(seq_udr, items_for(seq_udr))
        batched_codes = run_batched(bat_udr, items_for(bat_udr))
        assert sequential_codes == ["SUCCESS", "SUCCESS",
                                    "ENTRY_ALREADY_EXISTS", "SUCCESS",
                                    "NO_SUCH_OBJECT"]
        assert batched_codes == sequential_codes
        assert store_state(bat_udr) == store_state(seq_udr), \
            "in particular, the duplicate create must not have placed a " \
            "second copy of the newcomer on another element"

    def test_delete_then_recreate_repeats_placement_policy(self):
        """A CREATE following a DELETE of the same identity in one wave must
        run the placement policy again, not silently reuse the location the
        shared probe resolved before the delete ran."""
        from repro.core import PlacementMode
        config_kwargs = {"placement": PlacementMode.RANDOM}
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            config_kwargs)
        profile = seq_profiles[0]
        dn = SubscriberSchema.subscriber_dn(profile.identities.imsi)

        def items_for(udr):
            site = udr.topology.sites[0]
            return [
                BatchItem(DeleteRequest(dn=dn), ClientType.PROVISIONING,
                          site),
                BatchItem(AddRequest(dn=dn, attributes=profile.to_record()),
                          ClientType.PROVISIONING, site),
            ]

        sequential_codes = run_sequential(seq_udr, items_for(seq_udr))
        batched_codes = run_batched(bat_udr, items_for(bat_udr))
        assert batched_codes == sequential_codes == ["SUCCESS", "SUCCESS"]
        imsi = profile.identities.imsi
        assert bat_udr.deployment.authoritative_lookup("imsi", imsi) == \
            seq_udr.deployment.authoritative_lookup("imsi", imsi), \
            "the recreate's placement must match the sequential run's"
        assert store_state(bat_udr) == store_state(seq_udr)

    def test_cross_site_same_class_dependence_matches_sequential(self):
        """Site groups only share the pipeline *front*; the transactional
        tail runs in global admission order, so a dependent chain spanning
        two client sites still behaves sequentially."""
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair()
        known = seq_profiles[0]
        newcomer = SubscriberGenerator(seq_udr.config.regions,
                                       seed=6161).generate_one()
        newcomer_dn = SubscriberSchema.subscriber_dn(
            newcomer.identities.imsi)

        def items_for(udr):
            site_a, site_b = udr.topology.sites[0], udr.topology.sites[1]
            return [
                BatchItem(SearchRequest(dn=SubscriberSchema.subscriber_dn(
                    known.identities.imsi)), ClientType.PROVISIONING,
                    site_a),
                BatchItem(AddRequest(dn=newcomer_dn,
                                     attributes=newcomer.to_record()),
                          ClientType.PROVISIONING, site_b),
                BatchItem(SearchRequest(dn=newcomer_dn),
                          ClientType.PROVISIONING, site_a),
            ]

        sequential_codes = run_sequential(seq_udr, items_for(seq_udr))
        batched_codes = run_batched(bat_udr, items_for(bat_udr))
        assert batched_codes == sequential_codes == \
            ["SUCCESS", "SUCCESS", "SUCCESS"]
        assert store_state(bat_udr) == store_state(seq_udr)

    def test_unknown_identity_probed_once_without_wave_writes(self):
        """In a wave without placement-changing writes an unknown identity
        cannot become known mid-batch, so the shared probe's verdict is
        final: one locator probe, like one sequential request."""
        udr, profiles = build_udr(config=UDRConfig(seed=7),
                                  subscribers=SUBSCRIBERS)
        site = udr.topology.sites[0]
        unknown_dn = SubscriberSchema.subscriber_dn("999999999999999")
        # Identify the serving PoA by warming with a known read first.
        run_to_completion(udr, udr.execute(
            SearchRequest(dn=SubscriberSchema.subscriber_dn(
                profiles[0].identities.imsi)),
            ClientType.APPLICATION_FE, site))
        poa = next(p for p in udr.points_of_access if p.site == site)
        lookups_before = poa.locator.stats.lookups
        responses = run_to_completion(udr, udr.execute_batch([
            BatchItem(SearchRequest(dn=unknown_dn),
                      ClientType.APPLICATION_FE, site),
            BatchItem(SearchRequest(dn=unknown_dn),
                      ClientType.APPLICATION_FE, site),
        ]))
        assert [r.result_code.name for r in responses] == \
            ["NO_SUCH_OBJECT", "NO_SUCH_OBJECT"]
        assert poa.locator.stats.lookups == lookups_before + 1

    def test_responses_in_submission_order(self):
        """The priority dequeue reorders processing, never the answers."""
        (_seq, _), (udr, profiles) = equivalence_pair()
        known = profiles[0]
        unknown_dn = SubscriberSchema.subscriber_dn("999999999999999")
        items = [
            BatchItem(SearchRequest(dn=unknown_dn), ClientType.PROVISIONING,
                      udr.topology.sites[0], priority=Priority.BULK),
            BatchItem(SearchRequest(dn=SubscriberSchema.subscriber_dn(
                known.identities.imsi)), ClientType.APPLICATION_FE,
                fe_site_for(udr, known)),
        ]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert responses[0].result_code.name == "NO_SUCH_OBJECT"
        assert responses[0].request is items[0].request
        assert responses[1].result_code.name == "SUCCESS"
        assert responses[1].request is items[1].request


class TestCoalescedEquivalence:
    """The batch property with cross-wave write coalescing switched on:
    multi-record transactions only amortise cost, never change codes or
    state."""

    @pytest.mark.parametrize("workload_seed", [11, 23, 47])
    def test_random_workload_codes_and_state(self, workload_seed):
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            {"coalesce_writes": True})
        items = seeded_workload(seq_udr, seq_profiles, workload_seed)
        sequential_codes = run_sequential(seq_udr, items)
        batched_codes = run_batched(bat_udr, items)
        assert batched_codes == sequential_codes
        assert store_state(bat_udr) == store_state(seq_udr)
        assert identity_locations(bat_udr, items) == \
            identity_locations(seq_udr, items)
        assert bat_udr.metrics.counter("batch.coalesced.groups") > 0
        assert bat_udr.metrics.counter("batch.coalesced.records") >= \
            bat_udr.metrics.counter("batch.coalesced.groups")

    def test_dependent_same_class_chain_with_coalescing(self):
        """Create-then-read, duplicate create (savepoint rollback), delete
        and read-after-delete must match sequential execution even when the
        writes share one transaction."""
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair(
            {"coalesce_writes": True})
        newcomer = SubscriberGenerator(seq_udr.config.regions,
                                       seed=4242).generate_one()
        victim = seq_profiles[0]

        def items_for(udr):
            site = udr.topology.sites[0]
            newcomer_dn = SubscriberSchema.subscriber_dn(
                newcomer.identities.imsi)
            victim_dn = SubscriberSchema.subscriber_dn(
                victim.identities.imsi)
            return [
                BatchItem(AddRequest(dn=newcomer_dn,
                                     attributes=newcomer.to_record()),
                          ClientType.PROVISIONING, site),
                BatchItem(SearchRequest(dn=newcomer_dn),
                          ClientType.PROVISIONING, site),
                BatchItem(AddRequest(dn=newcomer_dn,
                                     attributes=newcomer.to_record()),
                          ClientType.PROVISIONING, site),
                BatchItem(DeleteRequest(dn=victim_dn),
                          ClientType.PROVISIONING, site),
                BatchItem(SearchRequest(dn=victim_dn),
                          ClientType.PROVISIONING, site),
            ]

        sequential_codes = run_sequential(seq_udr, items_for(seq_udr))
        batched_codes = run_batched(bat_udr, items_for(bat_udr))
        assert batched_codes == sequential_codes == \
            ["SUCCESS", "SUCCESS", "ENTRY_ALREADY_EXISTS", "SUCCESS",
             "NO_SUCH_OBJECT"]
        assert store_state(bat_udr) == store_state(seq_udr)
        assert bat_udr.metrics.counter("batch.coalesced.rollbacks") == 1


class TestDispatcherEquivalence:
    """The acceptance property of the dispatcher PR: for a seeded arrival
    trace, dispatcher execution yields identical result codes and final
    store/replica state as sequential execution -- with coalescing both
    off and on."""

    @pytest.mark.parametrize("coalesce", [False, True])
    @pytest.mark.parametrize("workload_seed", [11, 23])
    def test_seeded_arrival_trace(self, workload_seed, coalesce):
        sequential = build_udr(config=UDRConfig(seed=7),
                               subscribers=SUBSCRIBERS, seed=7)
        dispatched = build_udr(
            config=UDRConfig(seed=7,
                             dispatch_mode=DispatchMode.DISPATCHER,
                             batch_linger_ticks=5,
                             coalesce_writes=coalesce),
            subscribers=SUBSCRIBERS, seed=7)
        seq_udr, seq_profiles = sequential
        dis_udr, _profiles = dispatched
        items = seeded_workload(seq_udr, seq_profiles, workload_seed)
        sequential_codes = run_sequential(seq_udr, items)
        dispatched_codes = run_dispatched(dis_udr, items)
        assert dispatched_codes == sequential_codes
        assert store_state(dis_udr) == store_state(seq_udr)
        assert identity_locations(dis_udr, items) == \
            identity_locations(seq_udr, items)
        # The trace really exercised wave formation: fewer waves than
        # requests means arrivals were merged by the linger budget.
        waves = dis_udr.metrics.counter("dispatcher.waves")
        assert 0 < waves < len(items)

    def test_dispatcher_throughput_counts_every_request(self):
        (_seq, _), (dis_udr, dis_profiles) = (
            (None, None),
            build_udr(config=UDRConfig(
                seed=7, dispatch_mode=DispatchMode.DISPATCHER,
                batch_linger_ticks=5), subscribers=SUBSCRIBERS, seed=7))
        items = seeded_workload(dis_udr, dis_profiles, seed=31,
                                operations=20)
        codes = run_dispatched(dis_udr, items)
        assert len(codes) == len(items)
        assert dis_udr.metrics.counter("dispatcher.enqueued") == len(items)
        assert dis_udr.metrics.counter("dispatcher.dispatched") == \
            len(items)


class TestMuxEquivalence:
    """The replication-mux PR's acceptance property: multiplexed shipping
    only amortises cost -- replica contents, staleness behaviour and
    fail-over resumption match the per-channel polling loops."""

    @pytest.mark.parametrize("workload_seed", [11, 23])
    def test_seeded_workload_state_matches_polling(self, workload_seed):
        polling = build_udr(config=UDRConfig(seed=7, replication_mux=False),
                            subscribers=SUBSCRIBERS, seed=7)
        muxed = build_udr(config=UDRConfig(seed=7, replication_mux=True),
                          subscribers=SUBSCRIBERS, seed=7)
        poll_udr, poll_profiles = polling
        mux_udr, _profiles = muxed
        items = seeded_workload(poll_udr, poll_profiles, workload_seed)
        polling_codes = run_sequential(poll_udr, items)
        muxed_codes = run_sequential(mux_udr, items)
        assert muxed_codes == polling_codes
        assert store_state(mux_udr) == store_state(poll_udr)
        assert mux_udr.replication_mux.wakeups > 0
        assert all(channel.wakeups == 0 for channel in mux_udr.channels), \
            "no channel may fall back to polling while the mux drives"

    def test_failover_rebinds_and_resumes_from_correct_lsn(self):
        """The master moves sites mid-stream: the mux re-binds to the new
        master's log and the surviving slave stream resumes with no
        duplicate and no skipped applies."""
        udr, profiles = build_udr(
            config=UDRConfig(seed=7, replication_factor=3),
            subscribers=SUBSCRIBERS, seed=7)
        profile = profiles[0]
        dn = SubscriberSchema.subscriber_dn(profile.identities.imsi)
        site = fe_site_for(udr, profile)
        old_master = udr.deployment.authoritative_lookup(
            "imsi", profile.identities.imsi)
        replica_set = udr._replica_set_of_element(old_master)
        for index in range(4):
            run_to_completion(udr, udr.execute(
                ModifyRequest(dn=dn, changes={"servingMsc": f"pre-{index}"}),
                ClientType.APPLICATION_FE, site))
        udr.sim.run_for(0.2)  # drain: every copy holds pre-3
        udr.crash_element(old_master)
        promotions = udr.fail_over(old_master)
        assert replica_set.master_element_name != old_master
        assert promotions
        for index in range(4):
            response = run_to_completion(udr, udr.execute(
                ModifyRequest(dn=dn, changes={"servingMsc": f"post-{index}"}),
                ClientType.APPLICATION_FE, site))
            assert response.ok
        udr.sim.run_for(0.5)
        new_master = replica_set.master_element_name
        surviving_slave = next(
            name for name in replica_set.member_names
            if name not in (old_master, new_master))
        key = profile.key
        master_versions = [
            v.commit_seq
            for v in replica_set.master_copy.store.versions(key)]
        slave_versions = [
            v.commit_seq
            for v in replica_set.copy_on(surviving_slave).store.versions(key)]
        assert slave_versions == master_versions, \
            "no skipped and no duplicate applies across the fail-over"
        assert len(set(slave_versions)) == len(slave_versions)
        assert replica_set.copy_on(surviving_slave).store.get(key)[
            "servingMsc"] == "post-3"

    def test_idle_deployment_schedules_zero_replication_wakeups(self):
        """The wakeup-count regression check: with the mux enabled (the
        default) an idle deployment must not schedule replication events
        at all -- per-channel polling would wake len(channels) times per
        interval.  This is what keeps future PRs from silently
        reintroducing the polling fan-out."""
        udr, _profiles = build_udr(config=UDRConfig(seed=7),
                                   subscribers=SUBSCRIBERS, seed=7)
        assert udr.config.replication_mux, "the mux is the default"
        udr.sim.run_for(1.0)  # quiesce the subscriber-load shipments
        wakeups_before = udr.replication_mux.wakeups
        events_before = udr.sim._sequence
        udr.sim.run_for(10.0)
        assert udr.replication_mux.wakeups == wakeups_before
        polling_would_wake = len(udr.channels) * int(
            10.0 / udr.config.replication_interval)
        assert polling_would_wake >= 1200, "the comparison is meaningful"
        assert udr.sim._sequence - events_before <= len(udr.channels), \
            "an idle deployment schedules (almost) nothing"


class TestBatchMetricsContract:
    def test_batched_counts_equal_sequential_counts(self):
        (seq_udr, seq_profiles), (bat_udr, _bat) = equivalence_pair()
        items = seeded_workload(seq_udr, seq_profiles, seed=83)
        run_sequential(seq_udr, items)
        run_batched(bat_udr, items)
        seq_udr.flush_metrics()
        bat_udr.flush_metrics()
        for client in (ClientType.APPLICATION_FE, ClientType.PROVISIONING):
            seq_outcomes = seq_udr.metrics.outcomes(client.value)
            bat_outcomes = bat_udr.metrics.outcomes(client.value)
            assert bat_outcomes.attempted == seq_outcomes.attempted
            assert bat_outcomes.succeeded == seq_outcomes.succeeded
            assert bat_udr.metrics.latency(client.value).count == \
                seq_udr.metrics.latency(client.value).count
        assert bat_udr.metrics.counter("response_lost") == \
            seq_udr.metrics.counter("response_lost")

    def test_batch_flushes_exactly_once_at_batch_end(self):
        """The fix: a batch no longer flushes per request.  Even with the
        default ``metrics_batch_size=1`` (flush-per-request on the
        sequential path), one ``execute_batch`` flushes exactly once."""
        udr, profiles = build_udr(config=UDRConfig(seed=7),
                                  subscribers=SUBSCRIBERS)
        items = seeded_workload(udr, profiles, seed=97, operations=12)
        flushes_before = udr.pipeline.batch.flushes
        run_batched(udr, items)
        assert udr.pipeline.batch.flushes == flushes_before + 1
        assert udr.pipeline.batch.pending == 0
        # ... while the registry still received every record.
        attempted = sum(
            udr.metrics.outcomes(client.value).attempted
            for client in (ClientType.APPLICATION_FE, ClientType.PROVISIONING))
        assert attempted == len(items)

    def test_sequential_path_flush_cadence_unchanged(self):
        udr, profiles = build_udr(config=UDRConfig(seed=7),
                                  subscribers=SUBSCRIBERS)
        items = seeded_workload(udr, profiles, seed=97, operations=5)
        flushes_before = udr.pipeline.batch.flushes
        run_sequential(udr, items)
        assert udr.pipeline.batch.flushes == flushes_before + len(items)

    def test_linger_counts_as_latency_and_admitted_counts_admissions(self):
        from repro.core.pipeline import BATCH_LINGER_TICK
        udr, profiles = build_udr(config=UDRConfig(seed=7,
                                                   batch_linger_ticks=5),
                                  subscribers=SUBSCRIBERS)
        profile = profiles[0]
        site = fe_site_for(udr, profile)
        responses = run_to_completion(udr, udr.execute_batch([
            BatchItem(SearchRequest(dn=SubscriberSchema.subscriber_dn(
                profile.identities.imsi)), ClientType.APPLICATION_FE,
                site)]))
        assert responses[0].latency >= 5 * BATCH_LINGER_TICK, \
            "the linger wait the client sat through is part of its latency"
        assert udr.metrics.counter("batch.admitted") == 1
        # A wave that cannot reach any PoA admits nothing.
        for poa in udr.points_of_access:
            poa.fail()
        responses = run_to_completion(udr, udr.execute_batch([
            BatchItem(SearchRequest(dn=SubscriberSchema.subscriber_dn(
                profile.identities.imsi)), ClientType.APPLICATION_FE,
                site)]))
        assert responses[0].result_code.name == "UNAVAILABLE"
        assert udr.metrics.counter("batch.admitted") == 1, \
            "failed admission is not counted as admitted"

    def test_per_priority_counters_recorded(self):
        udr, profiles = build_udr(config=UDRConfig(seed=7),
                                  subscribers=SUBSCRIBERS)
        known = profiles[0]
        dn = SubscriberSchema.subscriber_dn(known.identities.imsi)
        items = [
            BatchItem(SearchRequest(dn=dn), ClientType.APPLICATION_FE,
                      fe_site_for(udr, known)),
            BatchItem(ModifyRequest(dn=dn, changes={"servingMsc": "m"}),
                      ClientType.PROVISIONING, udr.topology.sites[0]),
            BatchItem(SearchRequest(dn=dn), ClientType.PROVISIONING,
                      udr.topology.sites[0], priority=Priority.BULK),
        ]
        run_batched(udr, items)
        counters = udr.metrics.counters_with_prefix("batch.priority.")
        assert counters == {
            "batch.priority.signalling.completed": 1,
            "batch.priority.provisioning.completed": 1,
            "batch.priority.bulk.completed": 1,
        }
