"""Unit tests for the network substrate (topology, latency, partitions)."""

import pytest

from repro.sim import Simulation, units
from repro.net import (
    CompositeLatency,
    FixedLatency,
    LinkClass,
    LinkProfile,
    LogNormalLatency,
    Network,
    NetworkPartition,
    NetworkPartitionedError,
    NetworkTimeoutError,
    UniformLatency,
    make_multinational_topology,
)
from repro.net.topology import NetworkTopology


@pytest.fixture
def topology():
    return make_multinational_topology(("spain", "sweden", "germany"),
                                       sites_per_region=2)


@pytest.fixture
def sim():
    return Simulation(seed=42)


@pytest.fixture
def network(sim, topology):
    return Network(sim, topology)


def run_transfer(sim, network, src, dst):
    """Drive a single transfer to completion and return (ok, error, elapsed)."""
    outcome = {}

    def proc(sim):
        start = sim.now
        try:
            yield from network.transfer(src, dst)
        except Exception as exc:  # noqa: BLE001 - recording for assertions
            outcome["error"] = exc
        outcome["elapsed"] = sim.now - start

    sim.process(proc(sim))
    sim.run()
    return outcome


class TestTopology:
    def test_multinational_topology_shape(self, topology):
        assert len(topology.regions) == 3
        assert len(topology.sites) == 6
        spain = topology.region("spain")
        assert len(topology.sites_in_region(spain)) == 2

    def test_site_lookup(self, topology):
        site = topology.site("spain-dc1")
        assert site.region.name == "spain"
        assert str(site) == "spain/spain-dc1"

    def test_unknown_lookups_raise(self, topology):
        with pytest.raises(KeyError):
            topology.site("atlantis-dc1")
        with pytest.raises(KeyError):
            topology.region("atlantis")

    def test_duplicate_site_same_region_is_idempotent(self):
        topology = NetworkTopology()
        a = topology.add_site("dc1", "spain")
        b = topology.add_site("dc1", "spain")
        assert a is b

    def test_duplicate_site_other_region_rejected(self):
        topology = NetworkTopology()
        topology.add_site("dc1", "spain")
        with pytest.raises(ValueError):
            topology.add_site("dc1", "sweden")

    def test_site_pairs_cover_all_combinations(self, topology):
        pairs = list(topology.site_pairs())
        n = len(topology.sites)
        assert len(pairs) == n * (n - 1) // 2


class TestLatencyModels:
    def test_fixed_latency(self):
        model = FixedLatency(0.01)
        assert model.sample(None) == 0.01
        assert model.mean() == 0.01

    def test_uniform_latency_bounds(self):
        sim = Simulation(seed=1)
        model = UniformLatency(0.001, 0.002)
        samples = [model.sample(sim.rng("x")) for _ in range(200)]
        assert all(0.001 <= s <= 0.002 for s in samples)
        assert model.mean() == pytest.approx(0.0015)

    def test_lognormal_latency_respects_floor(self):
        sim = Simulation(seed=1)
        model = LogNormalLatency(median=0.002, sigma=1.0, floor=0.0015)
        samples = [model.sample(sim.rng("x")) for _ in range(500)]
        assert min(samples) >= 0.0015

    def test_lognormal_mean_exceeds_median(self):
        model = LogNormalLatency(median=0.01, sigma=0.5)
        assert model.mean() > 0.01

    def test_composite_latency_sums(self):
        model = CompositeLatency([FixedLatency(0.001), FixedLatency(0.002)])
        assert model.mean() == pytest.approx(0.003)
        assert model.sample(None) == pytest.approx(0.003)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            CompositeLatency([])


class TestLinkClassification:
    def test_same_site_is_local(self, network, topology):
        site = topology.site("spain-dc1")
        assert network.classify(site, site) is LinkClass.LOCAL

    def test_same_region_is_regional(self, network, topology):
        a, b = topology.site("spain-dc1"), topology.site("spain-dc2")
        assert network.classify(a, b) is LinkClass.REGIONAL

    def test_cross_region_is_backbone(self, network, topology):
        a, b = topology.site("spain-dc1"), topology.site("sweden-dc1")
        assert network.classify(a, b) is LinkClass.BACKBONE

    def test_backbone_slower_than_local(self, network, topology):
        local = network.mean_one_way_latency(topology.site("spain-dc1"),
                                             topology.site("spain-dc1"))
        backbone = network.mean_one_way_latency(topology.site("spain-dc1"),
                                                topology.site("sweden-dc1"))
        assert backbone > 10 * local


class TestTransfer:
    def test_transfer_takes_positive_time(self, sim, network, topology):
        outcome = run_transfer(sim, network,
                               topology.site("spain-dc1"),
                               topology.site("sweden-dc1"))
        assert "error" not in outcome
        assert outcome["elapsed"] > 0

    def test_transfer_counts_messages(self, sim, network, topology):
        run_transfer(sim, network, topology.site("spain-dc1"),
                     topology.site("sweden-dc1"))
        assert network.stats.messages[LinkClass.BACKBONE] == 1
        assert network.stats.backbone_fraction() == 1.0

    def test_round_trip_doubles_latency(self, sim, topology):
        profiles = {link: LinkProfile(latency=FixedLatency(0.010))
                    for link in LinkClass}
        network = Network(sim, topology, profiles=profiles)
        result = {}

        def proc(sim):
            elapsed = yield from network.round_trip(
                topology.site("spain-dc1"), topology.site("sweden-dc1"))
            result["elapsed"] = elapsed

        sim.process(proc(sim))
        sim.run()
        assert result["elapsed"] == pytest.approx(0.020)

    def test_latency_factor_inflates_delay(self, sim, topology):
        profiles = {link: LinkProfile(latency=FixedLatency(0.010))
                    for link in LinkClass}
        network = Network(sim, topology, profiles=profiles)
        network.set_latency_factor(LinkClass.BACKBONE, 3.0)
        outcome = run_transfer(sim, network, topology.site("spain-dc1"),
                               topology.site("sweden-dc1"))
        assert outcome["elapsed"] == pytest.approx(0.030)

    def test_lossy_link_times_out(self, sim, topology):
        profiles = {link: LinkProfile(latency=FixedLatency(0.001),
                                      loss_probability=0.999999,
                                      timeout=0.25)
                    for link in LinkClass}
        network = Network(sim, topology, profiles=profiles)
        outcome = run_transfer(sim, network, topology.site("spain-dc1"),
                               topology.site("sweden-dc1"))
        assert isinstance(outcome["error"], NetworkTimeoutError)
        assert outcome["elapsed"] == pytest.approx(0.25)
        assert network.stats.losses == 1


class TestPartitions:
    def test_partition_blocks_cross_group_traffic(self, sim, network, topology):
        spain1 = topology.site("spain-dc1")
        sweden1 = topology.site("sweden-dc1")
        partition = NetworkPartition.isolating(spain1)
        network.apply_partition(partition)
        assert not network.reachable(spain1, sweden1)
        outcome = run_transfer(sim, network, spain1, sweden1)
        assert isinstance(outcome["error"], NetworkPartitionedError)
        assert network.stats.partition_rejections >= 1

    def test_partition_allows_same_group_traffic(self, network, topology):
        spain1 = topology.site("spain-dc1")
        spain2 = topology.site("spain-dc2")
        network.apply_partition(
            NetworkPartition([[spain1, spain2]], name="iberia cut"))
        assert network.reachable(spain1, spain2)

    def test_heal_partition_restores_traffic(self, network, topology):
        spain1 = topology.site("spain-dc1")
        sweden1 = topology.site("sweden-dc1")
        partition = NetworkPartition.isolating(spain1)
        network.apply_partition(partition)
        network.heal_partition(partition)
        assert network.reachable(spain1, sweden1)

    def test_clear_partitions(self, network, topology):
        network.apply_partition(
            NetworkPartition.isolating(topology.site("spain-dc1")))
        network.apply_partition(
            NetworkPartition.isolating(topology.site("sweden-dc1")))
        network.clear_partitions()
        assert network.partitions == []

    def test_region_split_constructor(self, network, topology):
        partition = NetworkPartition.splitting_regions(
            topology, topology.region("spain"))
        network.apply_partition(partition)
        assert not network.reachable(topology.site("spain-dc1"),
                                     topology.site("germany-dc1"))
        assert network.reachable(topology.site("spain-dc1"),
                                 topology.site("spain-dc2"))

    def test_overlapping_groups_rejected(self, topology):
        site = topology.site("spain-dc1")
        with pytest.raises(ValueError):
            NetworkPartition([[site], [site]])

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            NetworkPartition([[]])

    def test_failed_site_unreachable(self, network, topology):
        spain1 = topology.site("spain-dc1")
        network.fail_site(spain1)
        assert not network.reachable(topology.site("sweden-dc1"), spain1)
        assert not network.reachable(spain1, spain1)
        network.restore_site(spain1)
        assert network.reachable(topology.site("sweden-dc1"), spain1)


class TestDefaults:
    def test_default_backbone_latency_in_tens_of_milliseconds(self, network,
                                                              topology):
        mean = network.mean_one_way_latency(topology.site("spain-dc1"),
                                            topology.site("germany-dc1"))
        assert 10 * units.MILLISECOND < mean < 100 * units.MILLISECOND

    def test_default_local_latency_sub_millisecond(self, network, topology):
        site = topology.site("spain-dc1")
        assert network.mean_one_way_latency(site, site) < units.MILLISECOND

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile(latency=FixedLatency(0.01), loss_probability=1.5)
        with pytest.raises(ValueError):
            LinkProfile(latency=FixedLatency(0.01), timeout=0.0)

    def test_invalid_latency_factor_rejected(self, network):
        with pytest.raises(ValueError):
            network.set_latency_factor(LinkClass.BACKBONE, 0.0)
