"""Unit tests for the WAL, checkpointing and crash/recovery behaviour."""

import pytest

from repro.sim import units
from repro.storage import (
    CheckpointPolicy,
    Checkpointer,
    RecordStore,
    TransactionManager,
    WriteAheadLog,
)


def make_copy():
    store = RecordStore("copy")
    wal = WriteAheadLog("copy")
    manager = TransactionManager(store, wal, name="copy")
    checkpointer = Checkpointer(store, wal)
    return store, wal, manager, checkpointer


def commit_write(manager, key, value):
    tx = manager.begin()
    tx.write(key, value)
    return tx.commit()


class TestWriteAheadLog:
    def test_lsn_monotonically_increases(self):
        _, wal, manager, _ = make_copy()
        records = [commit_write(manager, f"k{i}", {"v": i}) for i in range(5)]
        assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
        assert wal.last_lsn == 5

    def test_since_returns_strictly_newer_records(self):
        _, wal, manager, _ = make_copy()
        for i in range(4):
            commit_write(manager, f"k{i}", {"v": i})
        assert [r.lsn for r in wal.since(2)] == [3, 4]
        assert wal.since(10) == []

    def test_mark_durable_cannot_go_backwards(self):
        _, wal, manager, _ = make_copy()
        commit_write(manager, "k", {"v": 1})
        wal.mark_durable(1)
        with pytest.raises(ValueError):
            wal.mark_durable(0)

    def test_undurable_records_reported(self):
        _, wal, manager, _ = make_copy()
        commit_write(manager, "a", {"v": 1})
        wal.mark_durable(wal.last_lsn)
        commit_write(manager, "b", {"v": 2})
        commit_write(manager, "c", {"v": 3})
        assert len(wal.undurable_records()) == 2

    def test_truncate_through_drops_old_records(self):
        _, wal, manager, _ = make_copy()
        for i in range(4):
            commit_write(manager, f"k{i}", {"v": i})
        dropped = wal.truncate_through(2)
        assert dropped == 2
        assert [r.lsn for r in wal.records] == [3, 4]

    def test_crash_drops_volatile_tail(self):
        _, wal, manager, _ = make_copy()
        commit_write(manager, "a", {"v": 1})
        wal.mark_durable(wal.last_lsn)
        commit_write(manager, "b", {"v": 2})
        lost = wal.crash()
        assert [r.keys for r in lost] == [("b",)]
        assert wal.last_lsn == 1

    def test_fully_truncated_log_keeps_its_high_water_mark(self):
        # Retention can drop *every* record (all durable and shipped); the
        # log must not report last_lsn=0, or the next checkpoint would try
        # to move the durability watermark backwards and blow up.
        _, wal, manager, checkpointer = make_copy()
        for i in range(3):
            commit_write(manager, f"k{i}", {"v": i})
        checkpointer.checkpoint()
        assert wal.truncate_through(wal.durable_lsn) == 3
        assert len(wal) == 0
        assert wal.last_lsn == 3
        assert checkpointer.checkpoint() == 3

    def test_record_at_lookup(self):
        _, wal, manager, _ = make_copy()
        record = commit_write(manager, "a", {"v": 1})
        assert wal.record_at(record.lsn) is not None
        assert wal.record_at(99) is None

    def test_since_after_truncation_and_crash(self):
        """The index-arithmetic fast path must survive both log prunings:
        truncation (drops a prefix) and a crash (drops the volatile tail)."""
        _, wal, manager, _ = make_copy()
        for i in range(6):
            commit_write(manager, f"k{i}", {"v": i})
        wal.truncate_through(2)
        assert [r.lsn for r in wal.since(0)] == [3, 4, 5, 6]
        assert [r.lsn for r in wal.since(4)] == [5, 6]
        assert wal.since(6) == []
        wal.mark_durable(4)
        wal.crash()
        assert [r.lsn for r in wal.since(2)] == [3, 4]
        assert wal.since(4) == []

    def test_append_listeners_fire_and_unsubscribe(self):
        """The commit hook the replication mux wakes on: every append (own
        commit or replication apply) notifies subscribers exactly once."""
        _, wal, manager, _ = make_copy()
        seen = []
        wal.subscribe(seen.append)
        wal.subscribe(seen.append)  # idempotent
        record = commit_write(manager, "a", {"v": 1})
        assert seen == [record]
        copy = wal.append_record(record)
        assert seen == [record, copy]
        wal.unsubscribe(seen.append)
        commit_write(manager, "b", {"v": 2})
        assert len(seen) == 2
        wal.unsubscribe(seen.append)  # no-op when absent


class TestCheckpointPolicy:
    def test_loss_window_halves_period_on_average(self):
        policy = CheckpointPolicy(period=10 * units.MINUTE)
        assert policy.expected_loss_window() == pytest.approx(5 * units.MINUTE)
        assert policy.worst_case_loss_window() == pytest.approx(10 * units.MINUTE)

    def test_synchronous_commit_has_no_loss_window(self):
        policy = CheckpointPolicy(synchronous_commit=True)
        assert policy.expected_loss_window() == 0.0
        assert policy.worst_case_loss_window() == 0.0

    def test_shorter_period_costs_more_throughput(self):
        data = 100 * units.GIB
        fast_dumps = CheckpointPolicy(period=5 * units.MINUTE)
        slow_dumps = CheckpointPolicy(period=60 * units.MINUTE)
        assert fast_dumps.throughput_penalty(data) > \
            slow_dumps.throughput_penalty(data)

    def test_penalty_capped_at_one(self):
        policy = CheckpointPolicy(period=1.0, disk_bandwidth=1 * units.MIB)
        assert policy.throughput_penalty(10 * units.GIB) == 1.0

    def test_empty_element_has_no_penalty(self):
        assert CheckpointPolicy().throughput_penalty(0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(period=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(disk_bandwidth=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(sync_write_latency=-1)


class TestCrashRecovery:
    def test_crash_loses_commits_after_checkpoint(self):
        store, _, manager, checkpointer = make_copy()
        commit_write(manager, "kept", {"v": 1})
        checkpointer.checkpoint(timestamp=100.0)
        commit_write(manager, "lost", {"v": 2})
        lost = checkpointer.crash_and_recover()
        assert [r.keys for r in lost] == [("lost",)]
        assert store.contains("kept")
        assert not store.contains("lost")

    def test_recovery_restores_checkpoint_image_exactly(self):
        store, _, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        commit_write(manager, "b", {"v": 2})
        checkpointer.checkpoint()
        commit_write(manager, "a", {"v": 99})
        checkpointer.crash_and_recover()
        assert store.read_committed("a") == {"v": 1}
        assert store.read_committed("b") == {"v": 2}

    def test_crash_without_checkpoint_loses_everything(self):
        store, _, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        lost = checkpointer.crash_and_recover()
        assert len(lost) == 1
        assert len(store) == 0

    def test_no_loss_when_nothing_written_since_checkpoint(self):
        store, _, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        checkpointer.checkpoint()
        lost = checkpointer.crash_and_recover()
        assert lost == []
        assert store.contains("a")

    def test_sync_commit_watermark_prevents_loss(self):
        store, wal, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        checkpointer.sync_commit()
        lost = wal.crash()
        assert lost == []

    def test_undurable_commit_count(self):
        _, _, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        assert checkpointer.undurable_commit_count() == 1
        checkpointer.checkpoint()
        assert checkpointer.undurable_commit_count() == 0

    def test_writes_after_recovery_continue_cleanly(self):
        store, _, manager, checkpointer = make_copy()
        commit_write(manager, "a", {"v": 1})
        checkpointer.checkpoint()
        commit_write(manager, "b", {"v": 2})
        checkpointer.crash_and_recover()
        commit_write(manager, "c", {"v": 3})
        assert store.contains("a")
        assert store.contains("c")
        assert not store.contains("b")
