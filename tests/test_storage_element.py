"""Unit tests for partitioning, copy placement and the storage element."""

import pytest

from repro.sim import units
from repro.storage import (
    DataPartition,
    PartitionLayout,
    PartitionScheme,
    ReplicaRole,
    ServiceTimeModel,
    StorageElement,
    StorageElementUnavailable,
)


class TestPartitionScheme:
    def test_keys_map_deterministically(self):
        scheme = PartitionScheme(num_partitions=4)
        key = "imsi-214070000000001"
        assert scheme.partition_for_key(key) is scheme.partition_for_key(key)

    def test_keys_spread_over_partitions(self):
        scheme = PartitionScheme(num_partitions=8)
        hits = {scheme.partition_for_key(f"imsi-{i}").index for i in range(500)}
        assert hits == set(range(8))

    def test_sub_partitions(self):
        partition = DataPartition(0, sub_partitions=4)
        assert 0 <= partition.sub_partition_for("key") < 4

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            PartitionScheme(num_partitions=0)
        with pytest.raises(ValueError):
            PartitionScheme(num_partitions=1, sub_partitions=0)


class TestPartitionLayout:
    def test_paper_example_three_elements(self):
        """Section 2.3: 3 SEs, each primary of one partition, secondary of two."""
        scheme = PartitionScheme(num_partitions=3)
        layout = PartitionLayout(scheme, ["se-0", "se-1", "se-2"],
                                 replication_factor=3)
        for index, element in enumerate(["se-0", "se-1", "se-2"]):
            assignment = layout.assignment(scheme.partition(index))
            assert assignment.primary_element == element
            assert len(assignment.secondary_elements) == 2
        copies = layout.copies_on("se-0")
        assert sorted(role for role in copies.values()) == \
            ["primary", "secondary", "secondary"]

    def test_full_replication_survives_down_to_one_element(self):
        """The paper's claim: service for 100% of subscribers with one SE left."""
        scheme = PartitionScheme(num_partitions=3)
        layout = PartitionLayout(scheme, ["se-0", "se-1", "se-2"],
                                 replication_factor=3)
        assert layout.surviving_coverage(["se-2"]) == 1.0

    def test_partial_replication_loses_coverage(self):
        scheme = PartitionScheme(num_partitions=4)
        layout = PartitionLayout(scheme, [f"se-{i}" for i in range(4)],
                                 replication_factor=2)
        assert layout.surviving_coverage(["se-0"]) < 1.0

    def test_assignment_for_key_matches_scheme(self):
        scheme = PartitionScheme(num_partitions=3)
        layout = PartitionLayout(scheme, ["a", "b", "c"], replication_factor=2)
        key = "imsi-1"
        assignment = layout.assignment_for_key(key)
        assert assignment.partition is scheme.partition_for_key(key)

    def test_replication_factor_bounds(self):
        scheme = PartitionScheme(num_partitions=2)
        with pytest.raises(ValueError):
            PartitionLayout(scheme, ["a", "b"], replication_factor=3)
        with pytest.raises(ValueError):
            PartitionLayout(scheme, ["a", "b"], replication_factor=0)
        with pytest.raises(ValueError):
            PartitionLayout(scheme, [], replication_factor=1)

    def test_partition_element_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PartitionLayout(PartitionScheme(3), ["a", "b"], replication_factor=1)


class TestServiceTimeModel:
    def test_transaction_time_scales_with_operations(self):
        model = ServiceTimeModel()
        small = model.transaction_time(reads=1, writes=0)
        large = model.transaction_time(reads=3, writes=2)
        assert large > small

    def test_read_only_transactions_skip_commit_cost(self):
        model = ServiceTimeModel()
        assert model.transaction_time(reads=2, writes=0) == \
            pytest.approx(2 * model.read_time)

    def test_sync_commit_penalty_dominates(self):
        model = ServiceTimeModel()
        asynchronous = model.transaction_time(reads=0, writes=1)
        synchronous = model.transaction_time(reads=0, writes=1,
                                             synchronous_commit=True)
        assert synchronous - asynchronous == pytest.approx(
            model.sync_commit_penalty)

    def test_scaled_model(self):
        model = ServiceTimeModel().scaled(2.0)
        assert model.read_time == pytest.approx(2 * ServiceTimeModel().read_time)


class TestStorageElement:
    def make_element(self, **kwargs):
        return StorageElement("se-test", blades=2, **kwargs)

    def test_add_and_access_copies(self):
        element = self.make_element()
        partition = DataPartition(0)
        copy = element.add_copy(partition, ReplicaRole.PRIMARY)
        assert element.hosts(partition)
        assert element.copy_of(partition) is copy
        assert element.primary_copies == [copy]

    def test_duplicate_copy_rejected(self):
        element = self.make_element()
        partition = DataPartition(0)
        element.add_copy(partition, ReplicaRole.PRIMARY)
        with pytest.raises(ValueError):
            element.add_copy(partition, ReplicaRole.SECONDARY)

    def test_unknown_partition_lookup_raises(self):
        with pytest.raises(KeyError):
            self.make_element().copy_of(DataPartition(5))

    def test_minimum_blade_count_enforced(self):
        with pytest.raises(ValueError):
            StorageElement("tiny", blades=1)

    def test_blade_failure_tolerated_with_redundancy(self):
        element = StorageElement("se", blades=4)
        assert element.blade_failure() is False
        assert element.available

    def test_losing_all_blades_crashes_element(self):
        element = StorageElement("se", blades=2)
        element.blade_failure()
        went_down = element.blade_failure()
        assert went_down is True
        assert not element.available

    def test_crash_reverts_to_checkpoint_and_counts_losses(self):
        element = self.make_element()
        partition = DataPartition(0)
        copy = element.add_copy(partition, ReplicaRole.PRIMARY)
        copy.transactions.run(lambda tx: tx.write("kept", {"v": 1}))
        copy.checkpointer.checkpoint()
        copy.transactions.run(lambda tx: tx.write("lost", {"v": 2}))
        lost = element.crash(timestamp=50.0)
        assert element.lost_transactions == 1
        assert [r.keys for r in lost] == [("lost",)]
        assert not element.available
        with pytest.raises(StorageElementUnavailable):
            element.require_available()

    def test_recover_tracks_downtime(self):
        element = self.make_element()
        element.crash(timestamp=100.0)
        element.recover(timestamp=160.0)
        assert element.available
        assert element.total_downtime == pytest.approx(60.0)

    def test_double_crash_is_noop(self):
        element = self.make_element()
        element.crash()
        assert element.crash() == []
        assert element.crashes == 1

    def test_promote_and_demote_copy(self):
        element = self.make_element()
        copy = element.add_copy(DataPartition(0), ReplicaRole.SECONDARY)
        assert not copy.is_primary
        copy.promote()
        assert copy.is_primary
        copy.demote()
        assert not copy.is_primary

    def test_memory_and_subscriber_accounting(self):
        element = self.make_element(subscriber_capacity=2)
        copy = element.add_copy(DataPartition(0), ReplicaRole.PRIMARY)
        copy.transactions.run(lambda tx: tx.write("sub-1", {"msisdn": "1"}))
        assert element.subscriber_count() == 1
        assert element.memory_used > 0
        assert 0 < element.memory_utilisation < 1
        assert element.has_capacity_for(1)
        copy.transactions.run(lambda tx: tx.write("sub-2", {"msisdn": "2"}))
        assert not element.has_capacity_for(1)

    def test_secondary_copies_do_not_count_subscribers(self):
        element = self.make_element()
        secondary = element.add_copy(DataPartition(1), ReplicaRole.SECONDARY)
        secondary.transactions.run(lambda tx: tx.write("sub-9", {"v": 1}))
        assert element.subscriber_count() == 0

    def test_default_capacity_matches_paper(self):
        """A 2-blade SE holds 2 million subscribers and ~200 GB (section 3.5)."""
        element = StorageElement("se-paper")
        assert element.subscriber_capacity == 2_000_000
        assert element.ram_bytes == 200 * units.GIB
