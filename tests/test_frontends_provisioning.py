"""Integration tests for application front-ends and the provisioning system."""

import pytest

from repro.core import ClientType
from repro.frontends import (
    ApplicationFrontEnd,
    HlrFrontEnd,
    HssFrontEnd,
    ProcedureCatalogue,
)
from repro.net import NetworkPartition
from repro.provisioning import (
    BatchRun,
    ChangeServices,
    CreateSubscription,
    ProvisioningSystem,
    SwapSim,
    TerminateSubscription,
)
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for


def run(udr, generator, horizon=600.0):
    process = udr.sim.process(generator)
    udr.sim.run_until_triggered(process, limit=udr.sim.now + horizon)
    assert process.triggered, "simulation horizon reached before completion"
    if not process.ok:
        raise process.exception
    return process.value


class TestProcedureCatalogue:
    def test_classic_procedures_cost_one_to_three_operations(self):
        """Paper section 3.5: typical procedures cause 1-3 LDAP operations."""
        generator = SubscriberGenerator(["spain"], seed=1)
        profile = generator.generate_one()
        for procedure, _weight in ProcedureCatalogue.classic_mix().items():
            assert 1 <= procedure.operation_count(profile) <= 3

    def test_ims_procedures_cost_five_or_six_operations(self):
        """Paper footnote 8: IMS procedures cause 5 or 6 LDAP operations."""
        generator = SubscriberGenerator(["spain"], seed=1)
        profile = generator.generate_one()
        for procedure in (ProcedureCatalogue.IMS_REGISTRATION,
                          ProcedureCatalogue.IMS_SESSION):
            assert 5 <= procedure.operation_count(profile) <= 6

    def test_average_operations_ordering(self):
        generator = SubscriberGenerator(["spain"], seed=1)
        profile = generator.generate_one()
        classic = ProcedureCatalogue.average_operations(
            ProcedureCatalogue.classic_mix(), profile)
        ims = ProcedureCatalogue.average_operations(
            ProcedureCatalogue.ims_mix(), profile)
        assert 1.0 <= classic <= 3.0
        assert ims > classic

    def test_by_name_lookup(self):
        assert ProcedureCatalogue.by_name("attach") is ProcedureCatalogue.ATTACH
        with pytest.raises(KeyError):
            ProcedureCatalogue.by_name("teleport")

    def test_pick_respects_weights(self):
        from repro.sim import Simulation
        rng = Simulation(seed=3).rng("mix")
        mix = {ProcedureCatalogue.AUTHENTICATION: 1.0}
        assert ProcedureCatalogue.pick(mix, rng) is \
            ProcedureCatalogue.AUTHENTICATION


class TestApplicationFrontEnd:
    def test_location_update_succeeds_and_updates_record(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        fe = HlrFrontEnd("hlr-fe-1", udr, fe_site_for(udr, profile))
        outcome = run(udr, fe.run_procedure(
            ProcedureCatalogue.LOCATION_UPDATE, profile,
            serving_node="msc-77"))
        assert outcome.succeeded
        assert outcome.operations == 2
        record = udr.subscriber_record(profile.identities.imsi)
        assert record["servingMsc"] == "msc-77"
        assert fe.success_ratio() == 1.0

    def test_ims_registration_marks_subscriber_registered(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        fe = HssFrontEnd("hss-fe-1", udr, fe_site_for(udr, profile))
        outcome = run(udr, fe.run_procedure(
            ProcedureCatalogue.IMS_REGISTRATION, profile))
        assert outcome.succeeded
        record = udr.subscriber_record(profile.identities.imsi)
        assert record["imsRegistered"] is True

    def test_procedure_fails_for_unknown_subscriber(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=999)
        stranger = generator.generate_one()
        fe = HlrFrontEnd("hlr-fe-1", udr, udr.topology.sites[0])
        outcome = run(udr, fe.run_procedure(
            ProcedureCatalogue.AUTHENTICATION, stranger))
        assert not outcome.succeeded
        assert outcome.failed_operation == 0
        assert fe.success_ratio() == 0.0

    def test_traffic_driver_generates_procedures(self, fresh_udr):
        udr, profiles = fresh_udr
        home = [p for p in profiles if p.home_region == "spain"] or profiles
        fe = HlrFrontEnd("hlr-fe-1", udr, udr.topology.sites[0])
        run(udr, fe.traffic_driver(home, rate_per_second=5.0, duration=10.0),
            horizon=200.0)
        assert fe.procedures_attempted > 10
        assert udr.metrics.outcomes("fe_procedures").attempted == \
            fe.procedures_attempted

    def test_traffic_driver_validates_inputs(self, fresh_udr):
        udr, profiles = fresh_udr
        fe = ApplicationFrontEnd("fe", udr, udr.topology.sites[0])
        with pytest.raises(ValueError):
            run(udr, fe.traffic_driver(profiles, rate_per_second=0, duration=1))
        with pytest.raises(ValueError):
            run(udr, fe.traffic_driver([], rate_per_second=1, duration=1))

    def test_front_end_mixes_differ(self):
        assert HlrFrontEnd.default_mix() != HssFrontEnd.default_mix()


class TestProvisioningOperations:
    def make_ps(self, udr, **kwargs):
        return ProvisioningSystem("ps-1", udr, udr.topology.sites[0], **kwargs)

    def test_create_subscription(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=777)
        new_profile = generator.generate_one()
        ps = self.make_ps(udr)
        outcome = run(udr, ps.provision(CreateSubscription(new_profile)))
        assert outcome.succeeded
        assert udr.subscriber_record(new_profile.identities.imsi) is not None
        assert ps.success_ratio() == 1.0

    def test_change_services(self, fresh_udr):
        udr, profiles = fresh_udr
        ps = self.make_ps(udr)
        outcome = run(udr, ps.provision(ChangeServices(
            profiles[0], changes={"svcBarPremium": True})))
        assert outcome.succeeded
        record = udr.subscriber_record(profiles[0].identities.imsi)
        assert record["svcBarPremium"] is True

    def test_terminate_subscription(self, fresh_udr):
        udr, profiles = fresh_udr
        ps = self.make_ps(udr)
        outcome = run(udr, ps.provision(TerminateSubscription(profiles[1])))
        assert outcome.succeeded
        assert udr.subscriber_record(profiles[1].identities.imsi) is None

    def test_swap_sim_is_multi_write_transaction(self, fresh_udr):
        udr, profiles = fresh_udr
        ps = self.make_ps(udr)
        operation = SwapSim(profiles[0], new_imsi="214079999999999")
        assert operation.write_count() == 2
        outcome = run(udr, ps.provision(operation))
        assert outcome.succeeded
        assert udr.subscriber_record("214079999999999") is not None

    def test_udc_needs_fewer_writes_than_pre_udc(self, fresh_udr):
        """Section 2.4: one UDR write vs writes on HLR/HSS plus every SLF."""
        udr, profiles = fresh_udr
        operation = CreateSubscription(profiles[0])
        assert operation.write_count() == 1
        assert operation.pre_udc_write_count() >= 4

    def test_provisioning_fails_during_partition(self, fresh_udr):
        """Section 4.1: provisioning writes almost always fail on partition."""
        udr, profiles = fresh_udr
        profile = next(p for p in profiles if p.home_region != "spain")
        ps = self.make_ps(udr)  # PS sits in spain
        region = udr.topology.region(profile.home_region)
        udr.network.apply_partition(
            NetworkPartition.splitting_regions(udr.topology, region))
        outcome = run(udr, ps.provision(ChangeServices(
            profile, changes={"svcBarPremium": True})))
        assert not outcome.succeeded
        assert outcome.needs_manual_intervention
        assert ps.manual_interventions == 1

    def test_retry_succeeds_after_partition_heals(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = next(p for p in profiles if p.home_region != "spain")
        ps = self.make_ps(udr, max_retries=2, retry_delay=5.0)
        region = udr.topology.region(profile.home_region)
        partition = NetworkPartition.splitting_regions(udr.topology, region)
        udr.network.apply_partition(partition)

        def heal_later(sim):
            yield sim.timeout(3.0)
            udr.network.heal_partition(partition)

        udr.sim.process(heal_later(udr.sim))
        outcome = run(udr, ps.provision(ChangeServices(
            profile, changes={"svcBarPremium": True})))
        assert outcome.succeeded
        assert outcome.attempts >= 2

    def test_invalid_parameters_rejected(self, fresh_udr):
        udr, _ = fresh_udr
        with pytest.raises(ValueError):
            ProvisioningSystem("ps", udr, udr.topology.sites[0], max_retries=-1)


class TestBatchProvisioning:
    def test_batch_of_creates_succeeds(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=555)
        operations = [CreateSubscription(profile)
                      for profile in generator.generate(10)]
        ps = ProvisioningSystem("ps-1", udr, udr.topology.sites[0])
        report = run(udr, BatchRun(ps, operations).run())
        assert report.success_ratio == 1.0
        assert not report.batch_failed
        assert report.duration > 0

    def test_batch_hit_by_partition_reports_failed_parts(self, fresh_udr):
        """Section 4.1: a short glitch leaves failed parts to fix by hand."""
        udr, _ = fresh_udr
        generator = SubscriberGenerator(("sweden",), seed=556)
        operations = [CreateSubscription(profile)
                      for profile in generator.generate(20)]
        ps = ProvisioningSystem("ps-1", udr, udr.topology.sites[0])
        sweden = udr.topology.region("sweden")
        partition = NetworkPartition.splitting_regions(udr.topology, sweden)

        def glitch(sim):
            yield sim.timeout(0.5)
            udr.network.apply_partition(partition)
            yield sim.timeout(30.0)
            udr.network.heal_partition(partition)

        udr.sim.process(glitch(udr.sim))
        report = run(udr, BatchRun(ps, operations, pacing=2.0).run(),
                     horizon=600.0)
        assert report.failed > 0
        assert report.batch_failed
        assert report.manual_interventions == report.failed

    def test_batch_abort_threshold(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(("germany",), seed=557)
        operations = [CreateSubscription(profile)
                      for profile in generator.generate(10)]
        ps = ProvisioningSystem("ps-1", udr, udr.topology.sites[0])
        germany = udr.topology.region("germany")
        udr.network.apply_partition(
            NetworkPartition.splitting_regions(udr.topology, germany))
        report = run(udr, BatchRun(
            ps, operations, abort_after_consecutive_failures=3).run(),
            horizon=600.0)
        assert report.aborted
        assert report.failed == 3

    def test_pipelined_batch_matches_sequential_outcomes(self, fresh_udr):
        """The pipelined run reports the same per-operation outcomes as the
        sequential one, in input order, while batching the admission."""
        udr, profiles = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=558)
        operations = [CreateSubscription(profile)
                      for profile in generator.generate(6)]
        operations += [ChangeServices(profile, changes={"svcBarPremium": True})
                       for profile in profiles[:4]]
        operations.append(SwapSim(profiles[10]))  # multi-request fallback
        ps = ProvisioningSystem("ps-pipe", udr, udr.topology.sites[0])
        outcomes = run(udr, ps.provision_pipelined(operations))
        assert len(outcomes) == len(operations)
        assert [outcome.operation for outcome in outcomes] == \
            [operation.name for operation in operations]
        assert all(outcome.succeeded for outcome in outcomes)
        assert ps.operations_attempted == len(operations)
        assert udr.metrics.counter("batch.admitted") == len(operations) - 1, \
            "every single-request operation went through batched admission"
        assert udr.metrics.counters_with_prefix("batch.priority.bulk")

    def test_pipelined_preserves_execution_order_across_fallbacks(
            self, fresh_udr):
        """A multi-request operation must not be reordered after later
        single-request ones: SwapSim(X) then TerminateSubscription(X) only
        works if the swap really executes first."""
        udr, profiles = fresh_udr
        subject = profiles[5]
        operations = [SwapSim(subject), TerminateSubscription(subject)]
        ps = ProvisioningSystem("ps-order", udr, udr.topology.sites[0])
        outcomes = run(udr, ps.provision_pipelined(operations))
        assert all(outcome.succeeded for outcome in outcomes)
        assert ps.manual_interventions == 0

    def test_pipelined_honours_ps_retry_budget(self, fresh_udr):
        """The PS-level max_retries re-batches failed operations, like the
        sequential provision() loop re-attempts them."""
        udr, profiles = fresh_udr
        subject = profiles[0]
        element = udr.deployment.authoritative_lookup(
            "imsi", subject.identities.imsi)
        master = udr.deployment.replica_set_of_element(
            element).master_element_name
        udr.crash_element(master)

        def fail_over_later():
            yield udr.sim.timeout(0.5)  # within the PS retry delay
            udr.fail_over(master)

        udr.sim.process(fail_over_later())
        ps = ProvisioningSystem("ps-retry", udr, udr.topology.sites[0],
                                max_retries=2, retry_delay=2.0)
        bystander = profiles[1]
        outcomes = run(udr, ps.provision_pipelined([
            ChangeServices(subject, changes={"svcBarPremium": True}),
            ChangeServices(bystander, changes={"svcBarPremium": True}),
        ]))
        assert all(outcome.succeeded for outcome in outcomes)
        assert outcomes[0].attempts == 2
        assert outcomes[1].attempts == 1
        assert outcomes[1].latency < outcomes[0].latency, \
            "an operation done in the first wave does not inherit the " \
            "retried operation's delay"
        assert ps.manual_interventions == 0

    def test_pipelined_abort_tallies_the_executed_slice(self, fresh_udr):
        """The abort threshold stops further slices, but a slice that
        already executed against the UDR is fully reflected in the report."""
        udr, _ = fresh_udr
        unknown = SubscriberGenerator(udr.config.regions,
                                      seed=560).generate(2)
        fresh = SubscriberGenerator(udr.config.regions, seed=561).generate(3)
        operations = [ChangeServices(profile, changes={"svcBarPremium": True})
                      for profile in unknown]  # fail: never provisioned
        operations += [CreateSubscription(profile) for profile in fresh]
        ps = ProvisioningSystem("ps-abort", udr, udr.topology.sites[0])
        report = run(udr, BatchRun(
            ps, operations, pipelined=True,
            abort_after_consecutive_failures=2).run())
        assert report.aborted
        assert report.failed == 2
        assert report.succeeded == 3, \
            "the creates committed in the same slice stay tallied"
        assert ps.operations_succeeded == 3

    def test_pipelined_batch_run_reports_like_sequential(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=559)
        operations = [CreateSubscription(profile)
                      for profile in generator.generate(12)]
        ps = ProvisioningSystem("ps-pipe", udr, udr.topology.sites[0])
        report = run(udr, BatchRun(ps, operations, pipelined=True).run())
        assert report.success_ratio == 1.0
        assert not report.batch_failed
        assert report.total_operations == len(operations)

    def test_invalid_batch_parameters(self, fresh_udr):
        udr, _ = fresh_udr
        ps = ProvisioningSystem("ps-1", udr, udr.topology.sites[0])
        with pytest.raises(ValueError):
            BatchRun(ps, [], pacing=-1.0)
        with pytest.raises(ValueError):
            BatchRun(ps, [], abort_after_consecutive_failures=0)
