"""Unit tests for the per-PoA location cache (fast path + invalidation)."""

import pytest

from repro.core.location_cache import (
    LocationCacheGroup,
    PoALocationCache,
)


class TestPoALocationCache:
    def test_miss_then_hit(self):
        cache = PoALocationCache("poa-a")
        assert cache.get("imsi", "123") is None
        cache.store("imsi", "123", "se-1")
        assert cache.get("imsi", "123") == "se-1"
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio() == pytest.approx(0.5)

    def test_identity_namespaces_are_distinct(self):
        cache = PoALocationCache("poa-a")
        cache.store("imsi", "123", "se-1")
        assert cache.get("msisdn", "123") is None

    def test_store_updates_existing_entry(self):
        cache = PoALocationCache("poa-a")
        cache.store("imsi", "123", "se-1")
        cache.store("imsi", "123", "se-2")
        assert cache.get("imsi", "123") == "se-2"
        assert len(cache) == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = PoALocationCache("poa-a", capacity=2)
        cache.store("imsi", "1", "se-1")
        cache.store("imsi", "2", "se-2")
        assert cache.get("imsi", "1") == "se-1"  # refresh "1"
        cache.store("imsi", "3", "se-3")         # evicts "2", the LRU entry
        assert cache.get("imsi", "2") is None
        assert cache.get("imsi", "1") == "se-1"
        assert cache.get("imsi", "3") == "se-3"
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PoALocationCache("poa-a", capacity=-1)

    def test_invalidate_element_drops_only_matching_entries(self):
        cache = PoALocationCache("poa-a")
        cache.store("imsi", "1", "se-1")
        cache.store("imsi", "2", "se-2")
        cache.store("msisdn", "700", "se-1")
        dropped = cache.invalidate_element("se-1")
        assert dropped == 2
        assert cache.get("imsi", "1") is None
        assert cache.get("msisdn", "700") is None
        assert cache.get("imsi", "2") == "se-2"
        assert cache.stats.invalidations == 2

    def test_invalidate_identities_mapping(self):
        cache = PoALocationCache("poa-a")
        cache.store("imsi", "1", "se-1")
        cache.store("msisdn", "700", "se-1")
        cache.invalidate_identities({"imsi": "1", "msisdn": "700",
                                     "impu": "sip:x"})
        assert len(cache) == 0
        assert cache.stats.invalidations == 2  # the impu entry never existed

    def test_clear(self):
        cache = PoALocationCache("poa-a")
        cache.store("imsi", "1", "se-1")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("imsi", "1") is None


class TestLocationCacheGroup:
    class _PoA:
        def __init__(self, name):
            self.name = name

    def test_one_cache_per_poa(self):
        group = LocationCacheGroup()
        poa_a, poa_b = self._PoA("poa-a"), self._PoA("poa-b")
        cache_a = group.for_poa(poa_a)
        assert group.for_poa(poa_a) is cache_a
        assert group.for_poa(poa_b) is not cache_a
        assert len(group) == 2
        assert group.cache("poa-a") is cache_a
        assert group.cache("poa-missing") is None

    def test_capacity_propagates(self):
        group = LocationCacheGroup(capacity=1)
        cache = group.for_poa(self._PoA("poa-a"))
        cache.store("imsi", "1", "se-1")
        cache.store("imsi", "2", "se-2")
        assert len(cache) == 1

    def test_fleet_wide_invalidation(self):
        group = LocationCacheGroup()
        cache_a = group.for_poa(self._PoA("poa-a"))
        cache_b = group.for_poa(self._PoA("poa-b"))
        cache_a.store("imsi", "1", "se-1")
        cache_b.store("imsi", "1", "se-1")
        cache_b.store("imsi", "2", "se-2")
        assert group.invalidate_element("se-1") == 2
        assert len(cache_a) == 0
        assert cache_b.get("imsi", "2") == "se-2"
        group.invalidate_identities({"imsi": "2"})
        assert len(cache_b) == 0

    def test_clear_all(self):
        group = LocationCacheGroup()
        cache = group.for_poa(self._PoA("poa-a"))
        cache.store("imsi", "1", "se-1")
        group.clear_all()
        assert len(cache) == 0
