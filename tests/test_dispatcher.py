"""The arrival-driven batch dispatcher and cross-wave write coalescing.

Linger-edge behaviour (a wave dispatched exactly at the linger deadline, a
single straggler that never fills a wave), wave formation under load,
priority overtaking in the dispatch queue, the dispatcher metrics, and the
coalesced multi-record transaction path: one begin/commit per partition per
wave, savepoint rollback isolating a failing record, and the savepoint
primitive itself.
"""

import pytest

from repro.core import (
    AdaptiveLingerController,
    AdaptiveLingerPolicy,
    BatchItem,
    ClientType,
    DispatchMode,
    Priority,
    UDRConfig,
)
from repro.core.pipeline import BATCH_LINGER_TICK
from repro.ldap import (
    AddRequest,
    ModifyRequest,
    SearchRequest,
    SubscriberSchema,
)
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion

LINGER_TICKS = 5
LINGER_BUDGET = LINGER_TICKS * BATCH_LINGER_TICK


def dispatcher_udr(subscribers=48, seed=7, **config_kwargs):
    kwargs = dict(dispatch_mode=DispatchMode.DISPATCHER,
                  batch_linger_ticks=LINGER_TICKS)
    kwargs.update(config_kwargs)
    return build_udr(config=UDRConfig(seed=seed, **kwargs),
                     subscribers=subscribers, seed=seed)


def read_for(udr, profile):
    return SearchRequest(dn=SubscriberSchema.subscriber_dn(
        profile.identities.imsi))


def wait_all(udr, tickets):
    def waiter():
        yield udr.sim.all_of([ticket.event for ticket in tickets])
    run_to_completion(udr, waiter())


class TestWaveFormation:
    def test_straggler_dispatched_exactly_at_linger_deadline(self):
        """A single request that never fills a wave is still dispatched --
        exactly when the oldest (here: only) request's linger budget runs
        out, not a tick earlier or later."""
        udr, profiles = dispatcher_udr()
        site = fe_site_for(udr, profiles[0])
        ticket = udr.submit(read_for(udr, profiles[0]),
                            ClientType.APPLICATION_FE, site)
        wait_all(udr, [ticket])
        assert ticket.event.value.result_code.name == "SUCCESS"
        # The wave left the queue exactly at the deadline: the recorded
        # linger equals the full budget.
        linger = udr.metrics.latency("dispatcher.linger")
        assert linger.count == 1
        assert linger.summary()["max_ms"] == pytest.approx(
            LINGER_BUDGET * 1000.0)
        assert udr.metrics.counter("dispatcher.waves") == 1
        assert udr.metrics.counter("dispatcher.waves_lingered") == 1
        assert udr.metrics.counter("dispatcher.waves_full") == 0
        # The client-perceived latency includes the real wait.
        assert ticket.latency >= LINGER_BUDGET

    def test_full_wave_dispatches_without_lingering(self):
        """Filling a wave dispatches immediately: no request waits the
        budget out."""
        udr, profiles = dispatcher_udr(batch_max_size=4)
        site = udr.topology.sites[0]
        tickets = [udr.submit(read_for(udr, profile),
                              ClientType.APPLICATION_FE, site)
                   for profile in profiles[:4]]
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.waves_full") == 1
        assert udr.metrics.counter("dispatcher.waves_lingered") == 0
        linger = udr.metrics.latency("dispatcher.linger")
        assert linger.summary()["max_ms"] == pytest.approx(0.0)

    def test_late_arrival_joins_lingering_wave(self):
        """A request arriving inside another's linger window rides the same
        wave: one wave, and the late joiner lingers less than the budget."""
        udr, profiles = dispatcher_udr()
        site = udr.topology.sites[0]
        tickets = []

        def arrivals():
            tickets.append(udr.submit(read_for(udr, profiles[0]),
                                      ClientType.APPLICATION_FE, site))
            yield udr.sim.timeout(LINGER_BUDGET / 2)
            tickets.append(udr.submit(read_for(udr, profiles[1]),
                                      ClientType.APPLICATION_FE, site))

        run_to_completion(udr, arrivals())
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.waves") == 1
        assert udr.metrics.counter("dispatcher.dispatched") == 2
        # Oldest request lingered the full budget, the joiner only half.
        lingered = [tickets[0].enqueued_at + LINGER_BUDGET,
                    tickets[1].enqueued_at + LINGER_BUDGET / 2]
        assert tickets[0].completed_at >= lingered[0]
        assert udr.metrics.latency("dispatcher.linger").summary()[
            "max_ms"] == pytest.approx(LINGER_BUDGET * 1000.0)

    def test_arrival_after_dispatch_starts_a_new_wave(self):
        """A request arriving after the previous wave left the queue forms
        its own wave with its own linger deadline."""
        udr, profiles = dispatcher_udr()
        site = udr.topology.sites[0]
        tickets = []

        def arrivals():
            tickets.append(udr.submit(read_for(udr, profiles[0]),
                                      ClientType.APPLICATION_FE, site))
            yield udr.sim.timeout(LINGER_BUDGET * 3)
            tickets.append(udr.submit(read_for(udr, profiles[1]),
                                      ClientType.APPLICATION_FE, site))

        run_to_completion(udr, arrivals())
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.waves") == 2
        assert udr.metrics.counter("dispatcher.waves_lingered") == 2

    def test_zero_linger_budget_dispatches_each_arrival(self):
        """``batch_linger_ticks=0`` never waits: each arrival that finds an
        idle dispatcher is a wave of one."""
        udr, profiles = dispatcher_udr(batch_linger_ticks=0)
        site = udr.topology.sites[0]
        tickets = []

        def arrivals():
            for profile in profiles[:3]:
                tickets.append(udr.submit(read_for(udr, profile),
                                          ClientType.APPLICATION_FE, site))
                done = udr.sim.event("spacer")
                tickets[-1].event.add_callback(lambda _e: done.succeed())
                yield done

        run_to_completion(udr, arrivals())
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.waves") == 3

    def test_priority_overtakes_in_dispatch_queue(self):
        """When more is queued than one wave holds, signalling arrivals
        overtake earlier bulk ones -- the weighted dequeue applies to the
        live queue, not just inside a pre-built batch."""
        udr, profiles = dispatcher_udr(batch_max_size=2,
                                       batch_linger_ticks=1000)
        site = udr.topology.sites[0]
        bulk = [udr.submit(read_for(udr, profile), ClientType.PROVISIONING,
                           site, priority=Priority.BULK)
                for profile in profiles[:3]]
        signalling = udr.submit(read_for(udr, profiles[3]),
                                ClientType.APPLICATION_FE, site)
        wait_all(udr, bulk + [signalling])
        # Wave 1 (cut when the queue held 3 bulk + 1 signalling after the
        # max-size trigger) carries the signalling request plus the oldest
        # bulk one; the other two bulk requests ride later waves.
        assert signalling.completed_at <= min(t.completed_at
                                              for t in bulk[1:])
        assert udr.metrics.counter("dispatcher.waves") >= 2

    def test_queue_depth_gauges_recorded(self):
        udr, profiles = dispatcher_udr(batch_max_size=2,
                                       batch_linger_ticks=1000)
        site = udr.topology.sites[0]
        tickets = [udr.submit(read_for(udr, profile),
                              ClientType.APPLICATION_FE, site)
                   for profile in profiles[:3]]
        assert udr.metrics.gauge("dispatcher.queue_depth_max") == 3
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.enqueued") == 3
        assert udr.metrics.counter("dispatcher.dispatched") == 3
        assert udr.metrics.gauge("dispatcher.queue_depth") == 0

    def test_stop_leaves_unfinished_tickets_pending(self):
        udr, profiles = dispatcher_udr()
        site = udr.topology.sites[0]
        ticket = udr.submit(read_for(udr, profiles[0]),
                            ClientType.APPLICATION_FE, site)
        udr.stop()
        udr.sim.run_for(1.0)
        assert not ticket.done
        assert not udr.dispatcher.started


class TestDispatchModeRouting:
    def test_call_routes_direct_by_default(self):
        udr, profiles = build_udr()
        site = fe_site_for(udr, profiles[0])
        response = run_to_completion(udr, udr.call(
            read_for(udr, profiles[0]), ClientType.APPLICATION_FE, site))
        assert response.result_code.name == "SUCCESS"
        assert udr.metrics.counter("dispatcher.enqueued") == 0

    def test_call_routes_through_dispatcher_when_configured(self):
        udr, profiles = dispatcher_udr()
        site = fe_site_for(udr, profiles[0])
        response = run_to_completion(udr, udr.call(
            read_for(udr, profiles[0]), ClientType.APPLICATION_FE, site))
        assert response.result_code.name == "SUCCESS"
        assert udr.metrics.counter("dispatcher.enqueued") == 1
        assert response.latency >= 0.0

    def test_front_end_traffic_forms_waves(self):
        """Concurrent front-end procedures enqueue individual requests and
        the dispatcher batches across them -- the continuous-load regime."""
        from repro.frontends.hlr_fe import HlrFrontEnd
        udr, profiles = dispatcher_udr()
        by_region = {}
        for profile in profiles:
            by_region.setdefault(profile.current_region
                                 or profile.home_region, []).append(profile)
        for region, group in by_region.items():
            site = next(site for site in udr.topology.sites
                        if site.region.name == region)
            front_end = HlrFrontEnd(f"fe-{region}", udr, site)
            udr.sim.process(front_end.traffic_driver(
                group, rate_per_second=40.0, duration=2.0))
        udr.sim.run(until=udr.sim.now + 30.0)
        waves = udr.metrics.counter("dispatcher.waves")
        dispatched = udr.metrics.counter("dispatcher.dispatched")
        assert dispatched > 0
        assert waves < dispatched, \
            "lingering must have merged concurrent FE requests into waves"


class TestAdaptiveLinger:
    def controller(self, **policy_kwargs):
        policy = AdaptiveLingerPolicy(**policy_kwargs)
        return AdaptiveLingerController(policy, batch_max_size=32)

    def test_cold_start_and_standing_queue_dispatch_fast(self):
        controller = self.controller(min_ticks=0, max_ticks=50)
        assert controller.budget(0) == 0.0, "no estimate yet: don't guess"
        for _ in range(5):
            controller.observe_arrival(1.0)  # simultaneous arrivals
        assert controller.ewma == 0.0
        assert controller.budget(4) == 0.0, \
            "a standing queue fills waves on its own"

    def test_trickle_traffic_skips_the_latency_tax(self):
        controller = self.controller(min_ticks=0, max_ticks=50)
        now = 0.0
        for _ in range(10):
            now += 0.1  # 10/s: max budget gathers 0.5 requests
            controller.observe_arrival(now)
        assert controller.budget(0) == 0.0

    def test_mid_load_lingers_the_expected_fill_time(self):
        controller = self.controller(min_ticks=0, max_ticks=50)
        now = 0.0
        for _ in range(50):
            now += 0.002  # 500/s: a wave fills within the budget
            controller.observe_arrival(now)
        assert abs(controller.ewma - 0.002) < 1e-4
        # 10 queued, 21 missing: linger the expected fill time.
        budget = controller.budget(10)
        assert abs(budget - 21 * controller.ewma) < 1e-6
        # An empty queue would need 62 ms: clamped to the 50-tick maximum.
        assert controller.budget(0) == 50 * BATCH_LINGER_TICK
        # A full queue needs no waiting at all.
        assert controller.budget(31) == 0.0

    def test_budget_clamped_to_policy_window(self):
        controller = self.controller(min_ticks=2, max_ticks=10)
        now = 0.0
        for _ in range(50):
            now += 0.0005  # 2000/s: expected fill 15.5 ms > max 10 ms
            controller.observe_arrival(now)
        assert controller.budget(0) == 10 * BATCH_LINGER_TICK
        assert controller.budget(31) == 2 * BATCH_LINGER_TICK

    def test_small_budget_window_on_fast_traffic_still_cuts_off(self):
        """fill_threshold is relative to the wave: when even the maximum
        window can only gather a third of a wave, the controller refuses
        to linger regardless of how fast arrivals are."""
        controller = self.controller(min_ticks=0, max_ticks=10)
        now = 0.0
        for _ in range(50):
            now += 0.001  # 1000/s, but 10 ms gathers only 10 of 32
            controller.observe_arrival(now)
        assert controller.budget(0) == 0.0

    def test_dispatcher_uses_adaptive_budget(self):
        """Integration: a burst of simultaneous submissions collapses the
        adaptive budget to zero, so the under-filled wave dispatches
        immediately instead of waiting out a static linger."""
        udr, profiles = dispatcher_udr(
            adaptive_linger=AdaptiveLingerPolicy(min_ticks=0, max_ticks=50),
            batch_linger_ticks=50)  # the static budget that would apply
        site = fe_site_for(udr, profiles[0])
        start = udr.sim.now
        tickets = [udr.submit(read_for(udr, profile),
                              ClientType.APPLICATION_FE, site)
                   for profile in profiles[:8]]
        wait_all(udr, tickets)
        assert udr.metrics.counter("dispatcher.waves") == 1
        linger = udr.metrics.latency("dispatcher.linger")
        assert linger.maximum() < BATCH_LINGER_TICK, \
            "no ticket waited a static linger budget out"
        assert all(ticket.response.ok for ticket in tickets)
        recorder = udr.metrics.histogram("dispatcher.adaptive_budget")
        assert recorder.count >= 1


class TestSharedWaveRespond:
    def test_source_tickets_share_one_response_event(self):
        """N concurrent callers of one front-end process resume from a
        single grouped event per wave instead of N ticket events."""
        udr, profiles = dispatcher_udr()
        site = fe_site_for(udr, profiles[0])
        responses = []

        def caller(profile):
            response = yield from udr.call(
                read_for(udr, profile), ClientType.APPLICATION_FE, site,
                source="fe-shared")
            responses.append(response)

        processes = [udr.sim.process(caller(profile))
                     for profile in profiles[:6]]

        def waiter():
            yield udr.sim.all_of(processes)

        run_to_completion(udr, waiter())
        assert len(responses) == 6
        assert all(response.ok for response in responses)
        assert udr.metrics.counter("dispatcher.grouped_responses") == 1
        assert udr.metrics.counter("dispatcher.grouped_tickets") == 6

    def test_sources_resume_independently_across_waves(self):
        """A wave completing one source's tickets wakes that source's
        waiters only once; callers whose tickets ride a later wave re-wait
        on the fresh event and still get their own responses."""
        udr, profiles = dispatcher_udr(batch_max_size=2,
                                       batch_linger_ticks=1)
        site = fe_site_for(udr, profiles[0])
        responses = {}

        def caller(name, profile):
            response = yield from udr.call(
                read_for(udr, profile), ClientType.APPLICATION_FE, site,
                source="fe-one")
            responses[name] = response

        def spaced_callers():
            for index, profile in enumerate(profiles[:5]):
                udr.sim.process(caller(f"c{index}", profile))
                yield udr.sim.timeout(0.0005)

        run_to_completion(udr, spaced_callers())
        udr.sim.run_for(2.0)
        assert len(responses) == 5
        assert all(response.ok for response in responses.values())
        waves = udr.metrics.counter("dispatcher.waves")
        assert waves >= 2, "the five tickets spanned several waves"
        assert udr.metrics.counter("dispatcher.grouped_tickets") == 5
        assert udr.metrics.counter("dispatcher.grouped_responses") == waves

    def test_mixed_wave_keeps_per_ticket_events_for_untagged(self):
        udr, profiles = dispatcher_udr()
        site = fe_site_for(udr, profiles[0])
        plain = udr.submit(read_for(udr, profiles[0]),
                           ClientType.APPLICATION_FE, site)
        tagged = udr.submit(read_for(udr, profiles[1]),
                            ClientType.APPLICATION_FE, site,
                            source="fe-mixed")
        assert tagged.event is None
        wait_all(udr, [plain])
        udr.sim.run_for(1.0)
        assert plain.event.value.result_code.name == "SUCCESS"
        assert tagged.done and tagged.response.ok
        assert udr.metrics.counter("dispatcher.grouped_responses") == 1
        assert udr.metrics.counter("dispatcher.grouped_tickets") == 1

    def test_front_end_procedures_ride_the_grouped_path(self):
        from repro.frontends.hlr_fe import HlrFrontEnd
        udr, profiles = dispatcher_udr()
        site = fe_site_for(udr, profiles[0])
        front_end = HlrFrontEnd("fe-grouped", udr, site)
        udr.sim.process(front_end.traffic_driver(
            profiles[:12], rate_per_second=200.0, duration=0.5))
        udr.sim.run(until=udr.sim.now + 20.0)
        assert front_end.procedures_attempted > 0
        assert udr.metrics.counter("dispatcher.grouped_tickets") > 0
        assert udr.metrics.counter("dispatcher.grouped_responses") <= \
            udr.metrics.counter("dispatcher.grouped_tickets")


class TestCoalescedWrites:
    def coalescing_udr(self, **kwargs):
        return build_udr(config=UDRConfig(seed=7, coalesce_writes=True,
                                          **kwargs), subscribers=48)

    @staticmethod
    def partition_mates(udr, profiles, count):
        """Profiles whose records live on the same storage element."""
        by_element = {}
        for profile in profiles:
            element = udr.deployment.authoritative_lookup(
                "imsi", profile.identities.imsi)
            by_element.setdefault(element, []).append(profile)
        group = max(by_element.values(), key=len)
        assert len(group) >= count
        return group[:count]

    def test_same_partition_writes_commit_as_one_transaction(self):
        udr, profiles = self.coalescing_udr()
        mates = self.partition_mates(udr, profiles, 3)
        element = udr.deployment.authoritative_lookup(
            "imsi", mates[0].identities.imsi)
        copy = udr.deployment.replica_set_of_element(element).master_copy
        commits_before = copy.transactions.commits
        site = udr.topology.sites[0]
        items = [BatchItem(ModifyRequest(
            dn=SubscriberSchema.subscriber_dn(mate.identities.imsi),
            changes={"servingMsc": f"msc-{index}"}),
            ClientType.PROVISIONING, site)
            for index, mate in enumerate(mates)]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert all(r.result_code.name == "SUCCESS" for r in responses)
        assert copy.transactions.commits == commits_before + 1, \
            "three writes against one partition must be one transaction"
        assert udr.metrics.counter("batch.coalesced.groups") == 1
        assert udr.metrics.counter("batch.coalesced.records") == 3
        for index, mate in enumerate(mates):
            record = copy.store.get(f"sub:{mate.identities.imsi}")
            assert record["servingMsc"] == f"msc-{index}"

    def test_rollback_isolates_failing_record(self):
        """A record failing its business check rolls back to its savepoint;
        the group-mates before and after it still commit."""
        udr, profiles = self.coalescing_udr()
        mates = self.partition_mates(udr, profiles, 2)
        existing = mates[0]
        site = udr.topology.sites[0]
        items = [
            BatchItem(ModifyRequest(
                dn=SubscriberSchema.subscriber_dn(mates[0].identities.imsi),
                changes={"servingMsc": "before"}),
                ClientType.PROVISIONING, site),
            # Duplicate create: fails ENTRY_ALREADY_EXISTS inside the shared
            # transaction.
            BatchItem(AddRequest(
                dn=SubscriberSchema.subscriber_dn(existing.identities.imsi),
                attributes=existing.to_record()),
                ClientType.PROVISIONING, site),
            BatchItem(ModifyRequest(
                dn=SubscriberSchema.subscriber_dn(mates[1].identities.imsi),
                changes={"servingMsc": "after"}),
                ClientType.PROVISIONING, site),
        ]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert [r.result_code.name for r in responses] == \
            ["SUCCESS", "ENTRY_ALREADY_EXISTS", "SUCCESS"]
        assert udr.metrics.counter("batch.coalesced.rollbacks") == 1
        element = udr.deployment.authoritative_lookup(
            "imsi", mates[0].identities.imsi)
        copy = udr.deployment.replica_set_of_element(element).master_copy
        assert copy.store.get(
            f"sub:{mates[0].identities.imsi}")["servingMsc"] == "before"
        assert copy.store.get(
            f"sub:{mates[1].identities.imsi}")["servingMsc"] == "after"
        # The duplicate create must not have clobbered the existing record
        # with a fresh profile copy.
        assert copy.store.get(
            f"sub:{existing.identities.imsi}")["servingMsc"] == "before"

    def test_read_after_write_in_wave_sees_the_write(self):
        """A read later in the wave flushes the open group on its
        partition, so it observes its wave-mates' writes exactly as the
        sequential path would."""
        udr, profiles = self.coalescing_udr(
            ps_reads_from_slave=False)
        profile = profiles[0]
        dn = SubscriberSchema.subscriber_dn(profile.identities.imsi)
        site = udr.topology.sites[0]
        items = [
            BatchItem(ModifyRequest(dn=dn,
                                    changes={"servingMsc": "fresh"}),
                      ClientType.PROVISIONING, site),
            BatchItem(SearchRequest(dn=dn), ClientType.PROVISIONING, site),
        ]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert [r.result_code.name for r in responses] == \
            ["SUCCESS", "SUCCESS"]
        assert responses[1].entries[0]["servingMsc"] == "fresh"

    def test_coalescing_off_keeps_per_write_transactions(self):
        udr, profiles = build_udr(config=UDRConfig(seed=7), subscribers=48)
        mates = self.partition_mates(udr, profiles, 2)
        element = udr.deployment.authoritative_lookup(
            "imsi", mates[0].identities.imsi)
        copy = udr.deployment.replica_set_of_element(element).master_copy
        commits_before = copy.transactions.commits
        site = udr.topology.sites[0]
        items = [BatchItem(ModifyRequest(
            dn=SubscriberSchema.subscriber_dn(mate.identities.imsi),
            changes={"servingMsc": "x"}), ClientType.PROVISIONING, site)
            for mate in mates]
        run_to_completion(udr, udr.execute_batch(items))
        assert copy.transactions.commits == commits_before + 2
        assert udr.metrics.counter("batch.coalesced.groups") == 0

    @staticmethod
    def inject_conflict(udr, on_call: int):
        """Make the ``on_call``-th apply_plan call hit a WriteConflict,
        faithful to Transaction.write's no-wait locking (the conflict
        aborts the whole transaction before raising)."""
        from repro.storage.errors import WriteConflict
        write_path = udr.pipeline.write_path
        original_apply = write_path.apply_plan
        calls = []

        def conflicted_apply(transaction, plan, copy):
            calls.append(plan.identity_value)
            if len(calls) == on_call:
                transaction.abort(reason="injected conflict")
                raise WriteConflict(plan.identity_value, holder=-1,
                                    requester=transaction.transaction_id)
            return original_apply(transaction, plan, copy)

        write_path.apply_plan = conflicted_apply

    @pytest.mark.parametrize("conflict_on_call", [1, 2])
    def test_conflict_abort_falls_back_to_per_record_retry(
            self, conflict_on_call):
        """A WriteConflict from outside the wave aborts the shared
        transaction.  Already-applied group-mates lost their (uncommitted)
        writes through no fault of their own, so they are re-driven through
        the per-record path and still succeed; only the conflicting record
        answers BUSY, which the retry policy then re-drives too."""
        from repro.core import RetryPolicy
        udr, profiles = build_udr(
            config=UDRConfig(seed=7, coalesce_writes=True,
                             retry_policy=RetryPolicy(max_retries=2)),
            subscribers=48)
        mates = self.partition_mates(udr, profiles, 2)
        site = udr.topology.sites[0]
        self.inject_conflict(udr, on_call=conflict_on_call)
        items = [BatchItem(ModifyRequest(
            dn=SubscriberSchema.subscriber_dn(mate.identities.imsi),
            changes={"servingMsc": "retried"}),
            ClientType.PROVISIONING, site) for mate in mates]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert [r.result_code.name for r in responses] == \
            ["SUCCESS", "SUCCESS"]
        assert udr.metrics.counter("batch.coalesced.aborts") == 1
        for mate in mates:
            element = udr.deployment.authoritative_lookup(
                "imsi", mate.identities.imsi)
            copy = udr.deployment.replica_set_of_element(
                element).master_copy
            record = copy.store.get(f"sub:{mate.identities.imsi}")
            assert record["servingMsc"] == "retried"

    def test_conflict_abort_without_policy_only_fails_the_conflicter(self):
        """Without a retry policy the conflicting record keeps its BUSY
        verdict, but its innocent group-mates are still completed -- the
        outcome sequential execution would have produced."""
        udr, profiles = build_udr(
            config=UDRConfig(seed=7, coalesce_writes=True), subscribers=48)
        mates = self.partition_mates(udr, profiles, 2)
        site = udr.topology.sites[0]
        self.inject_conflict(udr, on_call=2)
        items = [BatchItem(ModifyRequest(
            dn=SubscriberSchema.subscriber_dn(mate.identities.imsi),
            changes={"servingMsc": "kept"}),
            ClientType.PROVISIONING, site) for mate in mates]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert [r.result_code.name for r in responses] == \
            ["SUCCESS", "BUSY"]
        element = udr.deployment.authoritative_lookup(
            "imsi", mates[0].identities.imsi)
        copy = udr.deployment.replica_set_of_element(element).master_copy
        assert copy.store.get(
            f"sub:{mates[0].identities.imsi}")["servingMsc"] == "kept"

    def test_conflict_abort_restores_deleted_identities(self):
        """A DELETE whose eager deregistration was voided by a group abort
        must be locatable again for its re-drive -- and end up deleted,
        exactly as sequential execution would leave it."""
        from repro.ldap import DeleteRequest
        udr, profiles = build_udr(
            config=UDRConfig(seed=7, coalesce_writes=True), subscribers=48)
        mates = self.partition_mates(udr, profiles, 2)
        site = udr.topology.sites[0]
        self.inject_conflict(udr, on_call=2)
        items = [
            BatchItem(DeleteRequest(dn=SubscriberSchema.subscriber_dn(
                mates[0].identities.imsi)), ClientType.PROVISIONING, site),
            BatchItem(ModifyRequest(
                dn=SubscriberSchema.subscriber_dn(mates[1].identities.imsi),
                changes={"servingMsc": "x"}), ClientType.PROVISIONING,
                site),
        ]
        responses = run_to_completion(udr, udr.execute_batch(items))
        assert [r.result_code.name for r in responses] == \
            ["SUCCESS", "BUSY"]
        # The delete was re-driven after the abort: gone from the store
        # and from every locator.
        assert udr.deployment.authoritative_lookup(
            "imsi", mates[0].identities.imsi) is None

    def test_replication_shortfall_unregisters_like_sequential(self):
        """Under quorum replication with the replica down, a coalesced
        CREATE earns the same non-retryable UNAVAILABLE as the sequential
        path -- and, like it, leaves the newcomer unregistered (sequential
        raises before register_identities runs)."""
        from repro.core import ReplicationMode

        def build(coalesce):
            return build_udr(config=UDRConfig(
                seed=7, coalesce_writes=coalesce,
                replication_mode=ReplicationMode.QUORUM, write_quorum=2),
                subscribers=48)

        from repro.directory.errors import UnknownIdentity

        def registered_anywhere(udr, imsi):
            for locator in udr.locators.values():
                try:
                    locator.locate("imsi", imsi)
                    return True
                except UnknownIdentity:
                    continue
            return False

        outcomes = {}
        for coalesce in (False, True):
            udr, profiles = build(coalesce)
            newcomer = SubscriberGenerator(udr.config.regions,
                                           seed=515).generate_one()
            # Find where the newcomer would be placed (home-region
            # placement is deterministic), then crash that partition's
            # replica so the write quorum of 2 cannot be reached.
            placed = udr.deployment.place_subscriber(
                newcomer, newcomer.identities.imsi)
            replica_set = udr.deployment.replica_set_of_element(placed)
            for slave in replica_set.slave_names():
                udr.elements[slave].crash(timestamp=udr.sim.now)
            site = udr.topology.sites[0]
            items = [BatchItem(AddRequest(
                dn=SubscriberSchema.subscriber_dn(newcomer.identities.imsi),
                attributes=newcomer.to_record()),
                ClientType.PROVISIONING, site)]
            responses = run_to_completion(udr, udr.execute_batch(items))
            outcomes[coalesce] = (
                responses[0].result_code.name,
                registered_anywhere(udr, newcomer.identities.imsi))
        assert outcomes[True] == outcomes[False]
        assert outcomes[True][0] == "UNAVAILABLE"
        assert outcomes[True][1] is False, \
            "a create that failed its durability bar must stay unregistered"

    def test_dispatcher_with_coalescing_end_to_end(self):
        udr, profiles = dispatcher_udr(coalesce_writes=True)
        mates = self.partition_mates(udr, profiles, 2)
        site = udr.topology.sites[0]
        tickets = [udr.submit(ModifyRequest(
            dn=SubscriberSchema.subscriber_dn(mate.identities.imsi),
            changes={"servingMsc": "wave"}), ClientType.PROVISIONING, site)
            for mate in mates]
        wait_all(udr, tickets)
        assert all(t.event.value.result_code.name == "SUCCESS"
                   for t in tickets)
        assert udr.metrics.counter("batch.coalesced.groups") >= 1


class TestSavepoints:
    def test_rollback_to_savepoint_discards_later_writes(self):
        from repro.storage.engine import RecordStore
        from repro.storage.transactions import TransactionManager
        from repro.storage.wal import WriteAheadLog
        store = RecordStore(name="sp")
        manager = TransactionManager(store, WriteAheadLog(name="sp"))
        transaction = manager.begin()
        transaction.write("kept", {"value": 1})
        savepoint = transaction.savepoint()
        transaction.write("dropped", {"value": 2})
        transaction.rollback_to(savepoint)
        transaction.commit()
        assert store.get("kept") == {"value": 1}
        assert store.get("dropped") is None

    def test_rollback_restores_overwritten_value(self):
        from repro.storage.engine import RecordStore
        from repro.storage.transactions import TransactionManager
        from repro.storage.wal import WriteAheadLog
        store = RecordStore(name="sp2")
        manager = TransactionManager(store, WriteAheadLog(name="sp2"))
        transaction = manager.begin()
        transaction.write("key", {"value": "old"})
        savepoint = transaction.savepoint()
        transaction.write("key", {"value": "new"})
        transaction.rollback_to(savepoint)
        transaction.commit()
        assert store.get("key") == {"value": "old"}

    def test_foreign_savepoint_rejected(self):
        from repro.storage.engine import RecordStore
        from repro.storage.errors import TransactionStateError
        from repro.storage.transactions import TransactionManager
        from repro.storage.wal import WriteAheadLog
        store = RecordStore(name="sp3")
        manager = TransactionManager(store, WriteAheadLog(name="sp3"))
        first = manager.begin()
        savepoint = first.savepoint()
        first.commit()
        second = manager.begin()
        with pytest.raises(TransactionStateError):
            second.rollback_to(savepoint)
