"""Unit tests for the deployment layer's builder invariants."""

import pytest

from repro.core import (
    Deployment,
    DeploymentBuilder,
    LocationMode,
    PlacementMode,
    UDRConfig,
)
from repro.directory.locator import (
    CachedLocator,
    ConsistentHashLocator,
    ProvisionedLocator,
)
from repro.directory.placement import (
    HomeRegionPlacement,
    RandomPlacement,
    RegulatoryPinning,
    RoundRobinPlacement,
)
from repro.sim.engine import Simulation


def build(config=None) -> Deployment:
    config = config or UDRConfig(seed=3)
    return DeploymentBuilder(config, Simulation(seed=config.seed)).build()


class TestStructure:
    def test_counts_match_config(self):
        config = UDRConfig(seed=3)
        deployment = build(config)
        assert len(deployment.topology.sites) == config.total_sites
        assert len(deployment.elements) == config.total_storage_elements
        assert len(deployment.clusters) == config.total_sites
        assert len(deployment.points_of_access) == config.total_sites
        assert len(deployment.replica_sets) == config.total_storage_elements
        assert len(deployment.locators) == config.total_sites
        # One async channel per (partition, slave); one dual and one quorum
        # replicator per partition.
        slaves_per_partition = config.replication_factor - 1
        assert len(deployment.channels) == \
            config.total_storage_elements * slaves_per_partition
        assert len(deployment.dual_replicators) == \
            config.total_storage_elements
        assert len(deployment.quorum_replicators) == \
            config.total_storage_elements

    def test_element_order_interleaves_sites(self):
        deployment = build()
        sites = [deployment.elements[name].site
                 for name in deployment.element_order]
        for first, second in zip(sites, sites[1:]):
            assert first != second, \
                "consecutive elements in the replica layout sit at " \
                "different sites"

    def test_replica_sets_are_geo_dispersed(self):
        config = UDRConfig(seed=3)
        deployment = build(config)
        for replica_set in deployment.replica_sets.values():
            member_sites = {replica_set.element(name).site
                            for name in replica_set.member_names}
            assert len(member_sites) == config.replication_factor

    def test_primary_partition_mapping_is_consistent(self):
        deployment = build()
        for element_name, index in \
                deployment.primary_partition_of_element.items():
            replica_set = deployment.replica_sets[index]
            assert replica_set.master_element_name == element_name
            assert deployment.replica_set_of_element(element_name) \
                is replica_set
        # Every partition has exactly one home element.
        assert sorted(deployment.primary_partition_of_element.values()) == \
            sorted(deployment.replica_sets)

    def test_each_poa_has_its_own_locator(self):
        deployment = build()
        locators = [poa.locator for poa in deployment.points_of_access]
        assert len({id(locator) for locator in locators}) == len(locators)
        assert set(locators) == set(deployment.locators.values())


class TestLocatorModes:
    def test_provisioned_maps(self):
        deployment = build(UDRConfig(seed=3))
        assert all(isinstance(locator, ProvisionedLocator)
                   for locator in deployment.locators.values())

    def test_cached_maps(self):
        deployment = build(UDRConfig(
            location_mode=LocationMode.CACHED_MAPS, seed=3))
        assert all(isinstance(locator, CachedLocator)
                   for locator in deployment.locators.values())

    def test_consistent_hash(self):
        deployment = build(UDRConfig(
            location_mode=LocationMode.CONSISTENT_HASH, seed=3))
        assert all(isinstance(locator, ConsistentHashLocator)
                   for locator in deployment.locators.values())

    def test_make_locator_returns_fresh_instances(self):
        config = UDRConfig(seed=3)
        builder = DeploymentBuilder(config, Simulation(seed=3))
        builder.build()
        first = builder.make_locator("cluster-x")
        second = builder.make_locator("cluster-x")
        assert first is not second


class TestPlacementPolicies:
    def test_home_region_default(self):
        deployment = build()
        assert isinstance(deployment.placement_policy, HomeRegionPlacement)

    def test_random_and_round_robin(self):
        random_deployment = build(UDRConfig(
            placement=PlacementMode.RANDOM, seed=3))
        assert isinstance(random_deployment.placement_policy, RandomPlacement)
        rr_deployment = build(UDRConfig(
            placement=PlacementMode.ROUND_ROBIN, seed=3))
        assert isinstance(rr_deployment.placement_policy, RoundRobinPlacement)

    def test_regulatory_pins_wrap_the_policy(self):
        deployment = build(UDRConfig(
            regulatory_pins={"org-x": "spain"}, seed=3))
        assert isinstance(deployment.placement_policy, RegulatoryPinning)


class TestConfigValidation:
    def test_new_knobs_validated(self):
        with pytest.raises(ValueError):
            UDRConfig(location_cache_capacity=-1)
        with pytest.raises(ValueError):
            UDRConfig(metrics_batch_size=0)
