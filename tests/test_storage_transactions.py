"""Unit tests for intra-SE transactions and isolation levels."""

import pytest

from repro.storage import (
    IsolationLevel,
    RecordNotFound,
    RecordStore,
    TransactionManager,
    TransactionStateError,
    WriteAheadLog,
    WriteConflict,
)


@pytest.fixture
def manager():
    store = RecordStore("se-1:partition-0:primary")
    wal = WriteAheadLog("se-1:partition-0:primary")
    return TransactionManager(store, wal, name="se-1:partition-0:primary")


def seed(manager, key="sub-1", value=None):
    value = value if value is not None else {"msisdn": "34600000001"}
    tx = manager.begin()
    tx.write(key, value)
    tx.commit()
    return value


class TestBasicTransactions:
    def test_write_then_commit_is_visible(self, manager):
        tx = manager.begin()
        tx.write("sub-1", {"msisdn": "34600000001"})
        record = tx.commit()
        assert manager.store.read_committed("sub-1") == {"msisdn": "34600000001"}
        assert record.keys == ("sub-1",)
        assert manager.commits == 1

    def test_uncommitted_write_not_visible_to_read_committed(self, manager):
        writer = manager.begin()
        writer.write("sub-1", {"status": "new"})
        reader = manager.begin(IsolationLevel.READ_COMMITTED)
        with pytest.raises(RecordNotFound):
            reader.read("sub-1")

    def test_abort_discards_writes(self, manager):
        tx = manager.begin()
        tx.write("sub-1", {"status": "new"})
        tx.abort()
        with pytest.raises(RecordNotFound):
            manager.store.read_committed("sub-1")
        assert manager.aborts == 1

    def test_transaction_reads_its_own_writes(self, manager):
        tx = manager.begin()
        tx.write("sub-1", {"v": 1})
        assert tx.read("sub-1") == {"v": 1}

    def test_delete_writes_tombstone(self, manager):
        seed(manager)
        tx = manager.begin()
        tx.delete("sub-1")
        tx.commit()
        with pytest.raises(RecordNotFound):
            manager.store.read_committed("sub-1")

    def test_deleted_key_invisible_within_deleting_transaction(self, manager):
        seed(manager)
        tx = manager.begin()
        tx.delete("sub-1")
        with pytest.raises(RecordNotFound):
            tx.read("sub-1")

    def test_modify_merges_attributes(self, manager):
        seed(manager, value={"msisdn": "346", "barred": False})
        tx = manager.begin()
        updated = tx.modify("sub-1", {"barred": True, "msisdn": None})
        tx.commit()
        assert updated == {"barred": True}
        assert manager.store.read_committed("sub-1") == {"barred": True}

    def test_modify_non_map_record_rejected(self, manager):
        seed(manager, value="just a string")
        tx = manager.begin()
        with pytest.raises(TypeError):
            tx.modify("sub-1", {"a": 1})

    def test_finished_transaction_rejects_operations(self, manager):
        tx = manager.begin()
        tx.write("k", {"v": 1})
        tx.commit()
        with pytest.raises(TransactionStateError):
            tx.write("k", {"v": 2})
        with pytest.raises(TransactionStateError):
            tx.read("k")
        with pytest.raises(TransactionStateError):
            tx.commit()

    def test_read_only_commit_produces_no_log_record(self, manager):
        seed(manager)
        tx = manager.begin()
        tx.read("sub-1")
        assert tx.commit() is None
        assert manager.read_only_commits == 1
        assert len(manager.wal) == 1  # only the seed write

    def test_run_helper_commits_on_success(self, manager):
        result = manager.run(lambda tx: tx.write("k", {"v": 1}) or "ok")
        assert result == "ok"
        assert manager.store.read_committed("k") == {"v": 1}

    def test_run_helper_aborts_on_exception(self, manager):
        def body(tx):
            tx.write("k", {"v": 1})
            raise RuntimeError("body failed")

        with pytest.raises(RuntimeError):
            manager.run(body)
        assert not manager.store.contains("k")
        assert manager.aborts == 1


class TestWriteConflicts:
    def test_concurrent_writers_conflict(self, manager):
        first = manager.begin()
        second = manager.begin()
        first.write("sub-1", {"v": 1})
        with pytest.raises(WriteConflict):
            second.write("sub-1", {"v": 2})
        assert not second.is_active, "conflicting writer is aborted (no-wait)"
        first.commit()
        assert manager.store.read_committed("sub-1") == {"v": 1}

    def test_conflict_released_after_commit(self, manager):
        first = manager.begin()
        first.write("sub-1", {"v": 1})
        first.commit()
        second = manager.begin()
        second.write("sub-1", {"v": 2})
        second.commit()
        assert manager.store.read_committed("sub-1") == {"v": 2}

    def test_conflict_released_after_abort(self, manager):
        first = manager.begin()
        first.write("sub-1", {"v": 1})
        first.abort()
        second = manager.begin()
        second.write("sub-1", {"v": 2})
        second.commit()
        assert manager.store.read_committed("sub-1") == {"v": 2}

    def test_reads_do_not_block_writes_under_read_committed(self, manager):
        seed(manager)
        reader = manager.begin(IsolationLevel.READ_COMMITTED)
        reader.read("sub-1")
        writer = manager.begin()
        writer.write("sub-1", {"v": "new"})  # must not raise
        writer.commit()
        reader.commit()


class TestIsolationLevels:
    def test_read_uncommitted_sees_dirty_data(self, manager):
        writer = manager.begin()
        writer.write("sub-1", {"status": "dirty"})
        reader = manager.begin(IsolationLevel.READ_UNCOMMITTED)
        assert reader.read("sub-1") == {"status": "dirty"}

    def test_read_committed_is_non_repeatable(self, manager):
        seed(manager, value={"v": 1})
        reader = manager.begin(IsolationLevel.READ_COMMITTED)
        assert reader.read("sub-1") == {"v": 1}
        writer = manager.begin()
        writer.write("sub-1", {"v": 2})
        writer.commit()
        assert reader.read("sub-1") == {"v": 2}, \
            "READ_COMMITTED re-reads see newer commits"

    def test_repeatable_read_pins_snapshot(self, manager):
        seed(manager, value={"v": 1})
        reader = manager.begin(IsolationLevel.REPEATABLE_READ)
        assert reader.read("sub-1") == {"v": 1}
        writer = manager.begin()
        writer.write("sub-1", {"v": 2})
        writer.commit()
        assert reader.read("sub-1") == {"v": 1}, \
            "REPEATABLE_READ keeps the begin-time snapshot"

    def test_serializable_read_blocks_writers(self, manager):
        seed(manager)
        reader = manager.begin(IsolationLevel.SERIALIZABLE)
        reader.read("sub-1")
        writer = manager.begin()
        with pytest.raises(WriteConflict):
            writer.write("sub-1", {"v": "conflict"})

    def test_default_isolation_is_read_committed(self, manager):
        tx = manager.begin()
        assert tx.isolation is IsolationLevel.READ_COMMITTED

    def test_paper_default_levels(self):
        assert IsolationLevel.default_intra_element() is IsolationLevel.READ_COMMITTED
        assert IsolationLevel.default_cross_element() is IsolationLevel.READ_UNCOMMITTED

    def test_isolation_properties(self):
        assert IsolationLevel.READ_UNCOMMITTED.allows_dirty_reads
        assert not IsolationLevel.READ_COMMITTED.allows_dirty_reads
        assert IsolationLevel.REPEATABLE_READ.uses_snapshot
        assert IsolationLevel.SERIALIZABLE.takes_read_locks
        assert not IsolationLevel.READ_COMMITTED.takes_read_locks


class TestReplicationApply:
    def test_apply_log_record_preserves_serialisation_order(self):
        master_store = RecordStore("master")
        master_wal = WriteAheadLog("master")
        master = TransactionManager(master_store, master_wal, name="master")
        slave_store = RecordStore("slave")
        slave_wal = WriteAheadLog("slave")
        slave = TransactionManager(slave_store, slave_wal, name="slave")

        records = []
        for value in range(1, 4):
            tx = master.begin()
            tx.write("sub-1", {"v": value})
            records.append(tx.commit())

        for record in records:
            slave.apply_log_record(record)

        assert slave_store.read_committed("sub-1") == {"v": 3}
        master_chain = [v.commit_seq for v in master_store.versions("sub-1")]
        slave_chain = [v.commit_seq for v in slave_store.versions("sub-1")]
        assert master_chain == slave_chain

    def test_apply_log_record_advances_commit_seq(self):
        master = TransactionManager(RecordStore(), WriteAheadLog(), name="m")
        slave = TransactionManager(RecordStore(), WriteAheadLog(), name="s")
        tx = master.begin()
        tx.write("k", {"v": 1})
        record = tx.commit()
        slave.apply_log_record(record)
        tx2 = slave.begin()
        tx2.write("k", {"v": 2})
        record2 = tx2.commit()
        assert record2.commit_seq > record.commit_seq
