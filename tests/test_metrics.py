"""Unit tests for latency, availability, consistency metrics and reporting."""

import pytest

from repro.metrics import (
    AvailabilityTracker,
    ConsistencyTracker,
    LatencyRecorder,
    MetricsRegistry,
    OperationOutcomes,
    format_markdown_table,
    format_table,
)
from repro.sim import units


class TestLatencyRecorder:
    def test_basic_statistics(self):
        recorder = LatencyRecorder()
        recorder.extend([0.001, 0.002, 0.003, 0.004])
        assert recorder.count == 4
        assert recorder.mean() == pytest.approx(0.0025)
        assert recorder.minimum() == 0.001
        assert recorder.maximum() == 0.004
        assert recorder.median() == pytest.approx(0.002, abs=0.001)

    def test_percentiles_ordered(self):
        recorder = LatencyRecorder()
        recorder.extend(i * 0.001 for i in range(1, 101))
        assert recorder.percentile(0.5) <= recorder.p95() <= recorder.p99()
        assert recorder.p99() == pytest.approx(0.1, rel=0.02)

    def test_empty_recorder_is_safe(self):
        recorder = LatencyRecorder()
        assert recorder.empty
        assert recorder.mean() == 0.0
        assert recorder.percentile(0.99) == 0.0
        assert not recorder.meets_target_on_average()

    def test_paper_target_check(self):
        recorder = LatencyRecorder()
        recorder.extend([0.005] * 90 + [0.050] * 10)
        assert recorder.within_target(units.TEN_MILLISECONDS) == \
            pytest.approx(0.9)
        assert recorder.meets_target_on_average(), \
            "average is 9.5 ms, under the 10 ms requirement"

    def test_invalid_inputs_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1.0)
        with pytest.raises(ValueError):
            recorder.percentile(1.5)

    def test_summary_in_milliseconds(self):
        recorder = LatencyRecorder()
        recorder.record(0.010)
        assert recorder.summary()["mean_ms"] == pytest.approx(10.0)


class TestOperationOutcomes:
    def test_availability_ratio(self):
        outcomes = OperationOutcomes()
        for _ in range(99):
            outcomes.record_success()
        outcomes.record_failure("partition")
        assert outcomes.availability() == pytest.approx(0.99)
        assert outcomes.failures_by_reason == {"partition": 1}

    def test_empty_outcomes_are_fully_available(self):
        assert OperationOutcomes().availability() == 1.0

    def test_merge(self):
        a, b = OperationOutcomes(), OperationOutcomes()
        a.record_success()
        b.record_failure("crash")
        b.record_failure("crash")
        merged = a.merge(b)
        assert merged.attempted == 3
        assert merged.failures_by_reason == {"crash": 2}


class TestAvailabilityTracker:
    def test_downtime_accumulates_per_entity(self):
        tracker = AvailabilityTracker(observation_period=1000.0)
        tracker.mark_down("sub-group-1", timestamp=100.0)
        tracker.mark_up("sub-group-1", timestamp=150.0)
        assert tracker.downtime_of("sub-group-1") == pytest.approx(50.0)
        assert tracker.availability_of("sub-group-1") == pytest.approx(0.95)

    def test_open_interval_counted_with_now(self):
        tracker = AvailabilityTracker(observation_period=1000.0)
        tracker.mark_down("x", timestamp=0.0)
        assert tracker.downtime_of("x", now=10.0) == pytest.approx(10.0)

    def test_mark_up_without_down_is_noop(self):
        tracker = AvailabilityTracker()
        tracker.mark_up("x", timestamp=5.0)
        assert tracker.availability_of("x") == 1.0

    def test_double_mark_down_keeps_first_timestamp(self):
        tracker = AvailabilityTracker(observation_period=100.0)
        tracker.mark_down("x", timestamp=10.0)
        tracker.mark_down("x", timestamp=20.0)
        tracker.mark_up("x", timestamp=30.0)
        assert tracker.downtime_of("x") == pytest.approx(20.0)

    def test_five_nines_budget(self):
        tracker = AvailabilityTracker(observation_period=units.YEAR)
        tracker.mark_down("sub", timestamp=0.0)
        tracker.mark_up("sub", timestamp=300.0)       # five minutes down
        assert tracker.meets_five_nines("sub")
        tracker.mark_down("sub", timestamp=1000.0)
        tracker.mark_up("sub", timestamp=1400.0)      # now > 315s total
        assert not tracker.meets_five_nines("sub")

    def test_average_availability_over_entities(self):
        tracker = AvailabilityTracker(observation_period=100.0)
        tracker.mark_down("a", 0.0)
        tracker.mark_up("a", 10.0)
        tracker.mark_down("b", 0.0)
        tracker.mark_up("b", 30.0)
        assert tracker.average_availability() == pytest.approx(0.8)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityTracker(observation_period=0.0)


class TestConsistencyTracker:
    def test_stale_fraction(self):
        tracker = ConsistencyTracker()
        tracker.record_read(served_from_slave=True, stale=True,
                            versions_behind=3)
        tracker.record_read(served_from_slave=True)
        tracker.record_read(served_from_slave=False, client_type="fe")
        assert tracker.stale_read_fraction() == pytest.approx(1 / 3)
        assert tracker.slave_read_fraction() == pytest.approx(2 / 3)
        assert tracker.mean_staleness() == pytest.approx(3.0)
        assert tracker.by_client == {"fe": 1}

    def test_empty_tracker(self):
        tracker = ConsistencyTracker()
        assert tracker.stale_read_fraction() == 0.0
        assert tracker.mean_staleness() == 0.0

    def test_merge(self):
        a, b = ConsistencyTracker(), ConsistencyTracker()
        a.record_read(served_from_slave=True, stale=True, versions_behind=1)
        b.record_read(served_from_slave=False, client_type="ps")
        merged = a.merge(b)
        assert merged.reads == 2
        assert merged.stale_reads == 1
        assert merged.by_client == {"ps": 1}


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.increment("ops")
        registry.increment("ops", 4)
        registry.set_gauge("lag", 0.5)
        assert registry.counter("ops") == 5
        assert registry.gauge("lag") == 0.5
        assert registry.counter("missing") == 0

    def test_structured_metrics_are_cached(self):
        registry = MetricsRegistry()
        assert registry.latency("read") is registry.latency("read")
        assert registry.outcomes("fe") is registry.outcomes("fe")
        assert registry.consistency("fe") is registry.consistency("fe")

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.increment("ops")
        registry.latency("read").record(0.002)
        registry.outcomes("fe").record_success()
        snapshot = registry.snapshot()
        assert snapshot["counter.ops"] == 1
        assert snapshot["latency.read.count"] == 1
        assert snapshot["outcomes.fe.availability"] == 1.0


class TestReportFormatting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["subscribers", 512_000_000],
                              ["ops/s", 9.216e9]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "512000000" in table

    def test_format_markdown_table(self):
        table = format_markdown_table(["a", "b"], [[1, 2]])
        assert table.splitlines()[0] == "| a | b |"
        assert table.splitlines()[2] == "| 1 | 2 |"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
