"""Smoke tests: every example script runs end to end and prints its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=300, check=False)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "loaded 120 subscribers" in output
        assert "provisioning success ratio: 1.000" in output

    def test_capacity_planning(self):
        output = run_example("capacity_planning.py")
        assert "512,000,000" in output or "512000000" in output
        assert "blade clusters" in output

    def test_partition_drill(self):
        output = run_example("partition_drill.py")
        assert "prefer_consistency" in output
        assert "prefer_availability" in output

    def test_durability_tuning(self):
        output = run_example("durability_tuning.py")
        assert "asynchronous" in output
        assert "quorum" in output

    def test_dispatcher_tuning(self):
        output = run_example("dispatcher_tuning.py")
        assert "light load" in output
        assert "near saturation" in output
        assert "coalesced txns" in output

    def test_session_qos(self):
        output = run_example("session_qos.py")
        assert "Provision.create -> SUCCESS" in output
        assert "bulk + 25-tick deadline" in output
        assert "TIME_LIMIT_EXCEEDED" in output

    def test_replication_tuning(self):
        output = run_example("replication_tuning.py")
        assert "per-channel polling" in output
        assert "site-pair mux" in output
        assert "ship-linger sweep" in output
