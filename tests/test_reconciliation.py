"""Online reconciliation: digests, drift repair, false positives, quarantine.

The drift matrix PR 8 pins, one suite per layer:

* **digests** -- two copies in the same state digest identically; any
  divergence (value bytes included) narrows to the differing merkle
  buckets;
* **repair** -- each :class:`~repro.faults.SilentCorruption` kind is
  detected and repaired in place within one reconciliation round:
  ``byte_flip`` restores the master's bytes, ``skip_apply`` replays the
  swallowed versions, ``locator_drop`` re-registers the identities, and a
  slave-only phantom is tombstoned;
* **false positives** -- a slave merely *behind* (replication backlog
  still in flight, e.g. during a network partition) is dismissed, not
  repaired;
* **read quarantine** -- copies under repair are steered around on the
  read path, and the quarantine always lifts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdc import Reconciler, bucket_of, digest_store
from repro.cdc.reconcile import slave_copy_missing_versions
from repro.api.operations import Read, Write
from repro.core import ClientType, UDRConfig
from repro.core.config import CdcPolicy, MembershipPolicy
from repro.directory import UnknownIdentity
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    InvariantChecker,
    PartitionIncident,
    SilentCorruption,
    SiteDisaster,
)
from repro.net import NetworkPartition
from repro.storage import RecordStore
from repro.storage.records import RecordVersion

from tests.conftest import build_udr, fe_site_for, run_to_completion
from tests.helpers import (
    build_replicated_partition,
    corruption_rng,
    flip_slave_record,
    inject_corruption,
    make_corruption,
    master_write,
)


def cdc_udr(subscribers=24, interval=2.0, **policy):
    config = UDRConfig(
        seed=7, cdc=CdcPolicy(reconcile_interval=interval, **policy))
    return build_udr(config, subscribers=subscribers)


def run_rounds(udr, rounds=1):
    """Advance the simulation across ``rounds`` reconciliation rounds."""
    interval = udr.config.cdc.reconcile_interval
    target = udr.reconciler.rounds + rounds
    deadline = udr.sim.now + (rounds + 2) * interval * 2
    while udr.reconciler.rounds < target and udr.sim.now < deadline:
        udr.sim.run(until=udr.sim.now + interval)
    assert udr.reconciler.rounds >= target
    return udr


def partition_with_records(udr):
    """An index whose master store holds at least one record."""
    for index in sorted(udr.replica_sets):
        replica_set = udr.replica_sets[index]
        master = replica_set.master_element_name
        if replica_set.copy_on(master).store.keys():
            return index
    pytest.fail("no partition holds records")


class TestDigests:
    def test_equal_states_digest_identically(self):
        _, _, _, _, replica_set = build_replicated_partition()
        for value in range(5):
            master_write(replica_set, f"sub-{value}", {"v": value})
        master = replica_set.master_copy.store
        mine, again = digest_store(master), digest_store(master)
        assert mine == again
        assert mine.leaves == 5
        replica = RecordStore("copy")
        for key in master.keys():
            replica.apply_version(master.latest(key))
        assert digest_store(replica).root == mine.root

    def test_value_divergence_narrows_to_its_bucket(self):
        _, _, _, _, replica_set = build_replicated_partition()
        for value in range(8):
            master_write(replica_set, f"sub-{value}", {"v": value})
        master = replica_set.master_copy.store
        replica = RecordStore("copy")
        for key in master.keys():
            replica.apply_version(master.latest(key))
        # Same commit_seq, different bytes: the byte-flip drift class.
        victim = sorted(master.keys())[3]
        original = replica.latest(victim)
        replica.apply_version(RecordVersion(
            victim, {"v": -1}, original.commit_seq,
            original.transaction_id, original.origin))
        diff = digest_store(master).diff(digest_store(replica))
        assert diff == [bucket_of(victim, 16)]

    def test_missing_key_and_bucket_count_mismatch(self):
        _, _, _, _, replica_set = build_replicated_partition()
        master_write(replica_set, "sub-1", {"v": 1})
        master = replica_set.master_copy.store
        empty = RecordStore("empty")
        assert digest_store(master).diff(digest_store(empty)) == \
            [bucket_of("sub-1", 16)]
        # Layout change: every bucket is suspect.
        assert len(digest_store(master, 4).diff(digest_store(master, 8))) \
            == 8

    def test_invalid_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            digest_store(RecordStore(), buckets=0)

    def test_missing_version_suffix_helper(self):
        chain = [RecordVersion("k", {"v": i}, i, i) for i in range(1, 6)]
        assert [v.commit_seq
                for v in slave_copy_missing_versions(chain, 2)] == [3, 4, 5]
        assert slave_copy_missing_versions(chain, 5) == []


class TestDriftRepair:
    def test_byte_flip_detected_and_value_restored(self):
        udr, _ = cdc_udr()
        udr.sim.run(until=0.5)
        index = partition_with_records(udr)
        report = inject_corruption(udr, "byte_flip", index)
        assert report.applied
        replica_set = udr.replica_sets[index]
        slave_store = replica_set.copy_on(report.element_name).store
        master_store = replica_set.copy_on(
            replica_set.master_element_name).store
        assert slave_store.read_committed(report.key) != \
            master_store.read_committed(report.key)
        run_rounds(udr, rounds=2)
        assert slave_store.read_committed(report.key) == \
            master_store.read_committed(report.key)
        kinds = {r.kind for r in udr.reconciler.repairs}
        assert "value_restored" in kinds
        assert udr.metrics.counter("reconciliation.detected") >= 1
        assert udr.metrics.counter("reconciliation.repaired") >= 1

    def test_skip_apply_replays_swallowed_versions(self):
        udr, profiles = cdc_udr()
        udr.sim.run(until=0.5)
        index = partition_with_records(udr)
        replica_set = udr.replica_sets[index]
        # Commit on the master; the mux's wake is a scheduled process, so
        # the shipment window is open until the simulation advances.
        key = sorted(replica_set.copy_on(
            replica_set.master_element_name).store.keys())[0]
        copy = replica_set.copy_on(replica_set.master_element_name)
        tx = copy.transactions.begin()
        tx.write(key, {"drifted": True})
        tx.commit(timestamp=udr.sim.now)
        report = inject_corruption(udr, "skip_apply", index)
        assert report.applied and report.records_swallowed >= 1
        slave_store = replica_set.copy_on(report.element_name).store
        udr.sim.run(until=udr.sim.now + 1.0)  # mux skips the acked records
        assert slave_store.latest(key).value != {"drifted": True}
        run_rounds(udr, rounds=2)
        assert slave_store.read_committed(key) == {"drifted": True}
        assert "missing_versions" in \
            {r.kind for r in udr.reconciler.repairs}

    def test_locator_drop_reregistered(self):
        udr, profiles = cdc_udr()
        udr.sim.run(until=0.5)
        index = partition_with_records(udr)
        report = inject_corruption(udr, "locator_drop", index)
        assert report.applied and report.identities
        site = report.corruption.site_name
        locator = udr.locators[f"cluster-{site}"]
        identity_type, value = next(iter(report.identities.items()))
        with pytest.raises(UnknownIdentity):
            locator.locate(identity_type, value)
        run_rounds(udr, rounds=2)
        located = locator.locate(identity_type, value)
        assert located is not None
        assert "locator_registered" in \
            {r.kind for r in udr.reconciler.repairs}
        assert udr.metrics.counter("reconciliation.locator_repaired") >= 1

    def test_phantom_key_tombstoned(self):
        udr, _ = cdc_udr()
        udr.sim.run(until=0.5)
        index = partition_with_records(udr)
        replica_set = udr.replica_sets[index]
        slave = replica_set.slave_names()[0]
        store = replica_set.copy_on(slave).store
        store.apply_version(RecordVersion(
            "sub:phantom", {"ghost": True}, store.last_applied_seq, 0))
        assert store.contains("sub:phantom")
        run_rounds(udr, rounds=2)
        assert not store.contains("sub:phantom")
        assert "phantom_removed" in \
            {r.kind for r in udr.reconciler.repairs}

    def test_scheduled_corruption_through_injector(self):
        udr, _ = cdc_udr()
        schedule = FaultSchedule() \
            .add_corruption(make_corruption(udr, "byte_flip", at=1.0)) \
            .add_corruption(make_corruption(udr, "locator_drop", at=1.0))
        injector = FaultInjector(udr, schedule)
        assert not schedule.empty
        injector.start()
        udr.sim.run(until=1.5)
        assert injector.corruptions_applied == 2
        assert all(r.applied for r in injector.corruption_reports)
        assert udr.metrics.counter("faults.corruption.injected") == 2
        run_rounds(udr, rounds=2)
        assert len(udr.reconciler.repairs) >= 2

    def test_clean_deployment_repairs_nothing(self):
        udr, _ = cdc_udr()
        run_rounds(udr, rounds=3)
        assert udr.reconciler.repairs == []
        assert udr.metrics.counter("reconciliation.detected") == 0
        status = udr.reconciler.status()
        assert status["enabled"] and status["running"]
        assert status["rounds"] >= 3
        assert status["counters"].get("reconciliation.rounds", 0) >= 3


class TestFalsePositives:
    def test_inflight_backlog_is_dismissed_not_repaired(self):
        udr, _ = cdc_udr()
        udr.sim.run(until=0.5)
        index = partition_with_records(udr)
        replica_set = udr.replica_sets[index]
        slave = replica_set.slave_names()[0]
        slave_site = udr.elements[slave].site
        # Isolate the slave's site: commits pile up as genuine in-flight
        # backlog the reconciler must not mistake for drift.
        partition = NetworkPartition.isolating(slave_site)
        udr.network.apply_partition(partition)
        copy = replica_set.copy_on(replica_set.master_element_name)
        key = sorted(copy.store.keys())[0]
        tx = copy.transactions.begin()
        tx.write(key, {"lagging": True})
        tx.commit(timestamp=udr.sim.now)
        run_rounds(udr, rounds=2)
        assert udr.metrics.counter("reconciliation.false_positive") >= 1
        assert not any(r.key == key for r in udr.reconciler.repairs)
        # Heal; replication converges; the next rounds see no drift.
        udr.network.heal_partition(partition)
        udr.sim.run(until=udr.sim.now + 2.0)
        detected = udr.metrics.counter("reconciliation.detected")
        run_rounds(udr, rounds=2)
        assert udr.metrics.counter("reconciliation.detected") == detected
        assert replica_set.copy_on(slave).store.read_committed(key) == \
            {"lagging": True}


class TestReadQuarantine:
    def test_quarantined_slaves_steered_around(self):
        udr, profiles = cdc_udr()
        udr.sim.run(until=0.5)
        # Find a profile whose record's partition we can fully quarantine.
        profile = profiles[0]
        key = f"sub:{profile.identities.imsi}"
        target = None
        for index, replica_set in udr.replica_sets.items():
            master = replica_set.master_element_name
            if key in replica_set.copy_on(master).store.keys():
                target = replica_set
                break
        assert target is not None, "profile record not found on any master"
        for slave in target.slave_names():
            udr.pipeline.read_quarantine.add(slave)
        client = udr.attach("fe@q", fe_site_for(udr, profile),
                            client_type=ClientType.APPLICATION_FE)
        with client.session() as session:
            response = run_to_completion(
                udr, session.call(Read(profile.identities.imsi)))
        assert response.ok
        assert udr.metrics.counter("reconciliation.reads_steered") >= 1
        udr.pipeline.read_quarantine.clear()

    def test_quarantine_lifts_after_every_round(self):
        udr, _ = cdc_udr()
        udr.sim.run(until=0.5)
        inject_corruption(udr, "byte_flip", partition_with_records(udr))
        run_rounds(udr, rounds=2)
        assert udr.pipeline.read_quarantine == set()
        assert len(udr.reconciler.repairs) >= 1


class TestPostHealConvergence:
    """Property (PR 9): *any* healed fault schedule converges.

    Hypothesis draws a compound fault schedule -- up to one incident per
    site, mixing element crashes, symmetric partitions, one-way
    partitions and site disasters -- and injects it into a
    membership-enabled deployment under live write traffic.  Everything
    is then healed and the system quiesces.  Whatever the schedule, the
    chaos invariant checker must report full replica and locator
    convergence and an empty violation log: no split-brain write, no
    acked write lost, no divergence the reconciliation plane left
    behind.
    """

    START_GRID = (0.5, 1.4, 2.3)
    INCIDENT_DURATION = 0.6
    HEAL_AT = 3.2
    QUIESCE = 2.8

    @settings(max_examples=8, deadline=None)
    @given(
        incidents=st.lists(
            st.tuples(
                st.sampled_from(("crash", "partition", "asym_partition",
                                 "disaster")),
                st.integers(min_value=0, max_value=2)),
            min_size=1, max_size=3,
            unique_by=lambda incident: incident[1]),
        seed=st.sampled_from((3, 7, 11)))
    def test_any_healed_fault_schedule_converges(self, incidents, seed):
        config = UDRConfig(seed=seed, name="post-heal",
                           membership=MembershipPolicy())
        udr, profiles = build_udr(config, subscribers=18)
        sim = udr.sim
        sessions = [udr.attach(f"fe-{site.name}", site,
                               client_type=ClientType.APPLICATION_FE)
                    .session()
                    for site in udr.topology.sites]

        def traffic():
            rng = sim.rng("postheal.traffic")
            index = 0
            while sim.now < self.HEAL_AT:
                yield sim.timeout(rng.expovariate(40.0))
                profile = profiles[index % len(profiles)]
                operation = (Write(profile.identities.imsi,
                                   {"servingMsc": f"m-{index}"})
                             if index % 3 else Read(profile.identities.imsi))
                sessions[index % len(sessions)].submit(operation)
                index += 1

        sim.process(traffic(), name="postheal:traffic")
        checker = InvariantChecker(udr)
        checker.start()

        schedule = FaultSchedule()
        crashes = []
        for start, (kind, site_index) in zip(self.START_GRID, incidents):
            site = udr.topology.sites[site_index]
            if kind == "crash":
                crashes.append((start, min(
                    name for name, element in udr.elements.items()
                    if element.site == site)))
            elif kind == "disaster":
                schedule.add_disaster(SiteDisaster(
                    site.name, start=start,
                    duration=self.INCIDENT_DURATION))
            else:
                partition = (NetworkPartition.one_way(site)
                             if kind == "asym_partition"
                             else NetworkPartition.isolating(site))
                schedule.add_partition(PartitionIncident(
                    partition, start=start,
                    duration=self.INCIDENT_DURATION))
        schedule.validate()
        FaultInjector(udr, schedule).start()

        def crash_later(at, element_name):
            yield sim.timeout(at - sim.now)
            if udr.elements[element_name].available:
                udr.crash_element(element_name)

        for at, element_name in crashes:
            sim.process(crash_later(at, element_name),
                        name=f"postheal:crash:{element_name}")

        sim.run(until=self.HEAL_AT)
        udr.network.clear_partitions()
        for site in udr.topology.sites:
            if udr.network.site_failed(site):
                udr.network.restore_site(site)
        for poa in udr.points_of_access:
            if not poa.available:
                poa.restore()
        for name, element in sorted(udr.elements.items()):
            if not element.available:
                udr.recover_element(name)
        sim.run(until=self.HEAL_AT + self.QUIESCE)

        checker.stop()
        replicas, locators = checker.final_check()
        checker.close()
        assert replicas, "replicas diverged after heal"
        assert locators, "locators diverged after heal"
        assert checker.violations == []


class TestHelpersAndValidation:
    def test_flip_slave_record_diverges_without_new_version(self):
        _, _, _, _, replica_set = build_replicated_partition()
        record = master_write(replica_set, "sub-1", {"v": 1, "name": "x"})
        replica_set.copy_on("se-1").transactions.apply_log_record(record)
        before = replica_set.copy_on("se-1").store.versions("sub-1")
        flipped = flip_slave_record(replica_set, "se-1", "sub-1")
        after = replica_set.copy_on("se-1").store.versions("sub-1")
        assert len(after) == len(before) == 1
        assert flipped.commit_seq == record.commit_seq
        assert flipped.value != \
            replica_set.master_copy.store.read_committed("sub-1")

    def test_corruption_validation(self):
        with pytest.raises(ValueError):
            SilentCorruption("site", 0, "bad_kind")
        with pytest.raises(ValueError):
            SilentCorruption("site", -1, "byte_flip")
        with pytest.raises(ValueError):
            SilentCorruption("site", 0, "byte_flip", at=-1.0)

    def test_rng_is_deterministic(self):
        assert corruption_rng(3).random() == corruption_rng(3).random()

    def test_cdc_policy_validation(self):
        with pytest.raises(ValueError):
            CdcPolicy(reconcile_interval=0)
        with pytest.raises(ValueError):
            CdcPolicy(digest_buckets=0)
        with pytest.raises(ValueError):
            CdcPolicy(digest_time=-1)
