"""Unit tests for the data location stage (maps, hashing, placement, sync)."""

import math

import pytest

from repro.directory import (
    CachedLocator,
    ConsistentHashLocator,
    ConsistentHashRing,
    HomeRegionPlacement,
    IdentityLocationMap,
    IdentityType,
    LocatorSyncInProgress,
    MapSynchroniser,
    MultiIndexDirectory,
    ProvisionedLocator,
    RandomPlacement,
    RegulatoryPinning,
    RoundRobinPlacement,
    UnknownIdentity,
)
from repro.directory.placement import PlacementCandidate, PlacementPolicy
from repro.net import Network, make_multinational_topology
from repro.sim import Simulation


class FakeSubscriber:
    def __init__(self, key="sub-1", home_region="spain", organisation=None):
        self.key = key
        self.home_region = home_region
        self.organisation = organisation


class TestIdentityLocationMap:
    def test_insert_and_locate(self):
        index = IdentityLocationMap(IdentityType.IMSI)
        index.insert("214070000000001", "se-0")
        assert index.locate("214070000000001") == "se-0"
        assert len(index) == 1

    def test_update_existing_entry(self):
        index = IdentityLocationMap(IdentityType.IMSI)
        index.insert("a", "se-0")
        index.insert("a", "se-1")
        assert index.locate("a") == "se-1"
        assert len(index) == 1

    def test_unknown_identity_raises(self):
        index = IdentityLocationMap(IdentityType.IMSI)
        with pytest.raises(UnknownIdentity):
            index.locate("missing")

    def test_remove_entry(self):
        index = IdentityLocationMap(IdentityType.IMSI)
        index.insert("a", "se-0")
        index.remove("a")
        assert "a" not in index
        with pytest.raises(UnknownIdentity):
            index.remove("a")

    def test_lookup_cost_grows_logarithmically(self):
        small = IdentityLocationMap(IdentityType.IMSI)
        large = IdentityLocationMap(IdentityType.IMSI)
        small.bulk_load((f"{i:010d}", "se-0") for i in range(100))
        large.bulk_load((f"{i:010d}", "se-0") for i in range(100_000))
        for i in range(0, 100, 7):
            small.locate(f"{i:010d}")
        for i in range(0, 100_000, 7919):
            large.locate(f"{i:010d}")
        ratio = large.average_lookup_cost() / small.average_lookup_cost()
        expected = math.log2(100_000) / math.log2(100)
        assert ratio == pytest.approx(expected, rel=0.25)

    def test_bulk_load_and_entries_sorted(self):
        index = IdentityLocationMap(IdentityType.MSISDN)
        index.bulk_load([("3", "c"), ("1", "a"), ("2", "b")])
        assert [identity for identity, _ in index.entries()] == ["1", "2", "3"]

    def test_counters_reset(self):
        index = IdentityLocationMap(IdentityType.IMSI)
        index.insert("a", "se-0")
        index.locate("a")
        index.reset_counters()
        assert index.lookups == 0
        assert index.average_lookup_cost() == 0.0


class TestMultiIndexDirectory:
    def test_register_creates_entry_per_identity(self):
        directory = MultiIndexDirectory()
        written = directory.register(
            {IdentityType.IMSI: "21407", IdentityType.MSISDN: "34600",
             IdentityType.IMPU: "sip:alice@ims"}, "se-2")
        assert written == 3
        assert directory.resolve(IdentityType.MSISDN, "34600") == "se-2"
        assert directory.resolve(IdentityType.IMPU, "sip:alice@ims") == "se-2"

    def test_unknown_identity_type_ignored_on_register(self):
        directory = MultiIndexDirectory([IdentityType.IMSI])
        written = directory.register({IdentityType.IMSI: "1", "other": "x"}, "se")
        assert written == 1

    def test_deregister_removes_entries(self):
        directory = MultiIndexDirectory()
        identities = {IdentityType.IMSI: "1", IdentityType.MSISDN: "2"}
        directory.register(identities, "se-0")
        removed = directory.deregister(identities)
        assert removed == 2
        assert directory.total_entries() == 0

    def test_relocate_changes_location(self):
        directory = MultiIndexDirectory()
        identities = {IdentityType.IMSI: "1"}
        directory.register(identities, "se-0")
        directory.relocate(identities, "se-5")
        assert directory.resolve(IdentityType.IMSI, "1") == "se-5"

    def test_all_entries_roundtrip_via_bulk_load(self):
        source = MultiIndexDirectory()
        source.register({IdentityType.IMSI: "1", IdentityType.MSISDN: "2"}, "se-0")
        target = MultiIndexDirectory()
        target.bulk_load(source.all_entries())
        assert target.resolve(IdentityType.MSISDN, "2") == "se-0"

    def test_empty_type_list_rejected(self):
        with pytest.raises(ValueError):
            MultiIndexDirectory([])


class TestConsistentHashRing:
    def test_lookup_is_deterministic(self):
        ring = ConsistentHashRing(["se-0", "se-1", "se-2"])
        assert ring.locate("imsi:1") == ring.locate("imsi:1")

    def test_keys_spread_over_locations(self):
        ring = ConsistentHashRing([f"se-{i}" for i in range(4)],
                                  virtual_nodes=128)
        counts = ring.distribution([f"imsi:{i}" for i in range(2000)])
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < 4 * min(counts.values())

    def test_removing_location_moves_only_its_keys(self):
        ring = ConsistentHashRing(["se-0", "se-1", "se-2"], virtual_nodes=64)
        keys = [f"imsi:{i}" for i in range(500)]
        before = {key: ring.locate(key) for key in keys}
        ring.remove_location("se-2")
        after = {key: ring.locate(key) for key in keys}
        moved = [key for key in keys if before[key] != after[key]]
        assert all(before[key] == "se-2" for key in moved), \
            "only keys owned by the removed node may move"

    def test_lookup_cost_independent_of_key_count(self):
        ring = ConsistentHashRing(["se-0", "se-1"], virtual_nodes=64)
        for i in range(10):
            ring.locate(f"imsi:{i}")
        cost_small = ring.average_lookup_cost()
        for i in range(5000):
            ring.locate(f"imsi:{i}")
        assert ring.average_lookup_cost() == pytest.approx(cost_small)

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing([]).locate("x")
        with pytest.raises(KeyError):
            ConsistentHashRing(["a"]).remove_location("b")
        with pytest.raises(ValueError):
            ConsistentHashRing(virtual_nodes=0)


class TestPlacementPolicies:
    def candidates(self):
        return [
            PlacementCandidate("se-spain", "spain"),
            PlacementCandidate("se-sweden", "sweden"),
            PlacementCandidate("se-germany", "germany"),
        ]

    def test_home_region_placement_prefers_home(self):
        policy = HomeRegionPlacement()
        chosen = policy.choose(FakeSubscriber(home_region="sweden"),
                               self.candidates())
        assert chosen == "se-sweden"
        assert policy.local_placements == 1

    def test_home_region_falls_back_when_region_absent(self):
        policy = HomeRegionPlacement()
        chosen = policy.choose(FakeSubscriber(home_region="france"),
                               self.candidates())
        assert chosen in {"se-spain", "se-sweden", "se-germany"}
        assert policy.fallback_placements == 1

    def test_home_region_skips_full_elements(self):
        policy = HomeRegionPlacement()
        candidates = [
            PlacementCandidate("se-spain", "spain", has_capacity=False),
            PlacementCandidate("se-sweden", "sweden"),
        ]
        chosen = policy.choose(FakeSubscriber(home_region="spain"), candidates)
        assert chosen == "se-sweden"

    def test_round_robin_cycles(self):
        policy = RoundRobinPlacement()
        subscriber = FakeSubscriber()
        picks = [policy.choose(subscriber, self.candidates()) for _ in range(6)]
        assert picks[:3] == ["se-spain", "se-sweden", "se-germany"]
        assert picks[:3] == picks[3:]

    def test_random_placement_uses_rng(self):
        sim = Simulation(seed=3)
        policy = RandomPlacement(sim.rng("placement"))
        picks = {policy.choose(FakeSubscriber(), self.candidates())
                 for _ in range(50)}
        assert len(picks) > 1

    def test_regulatory_pinning_overrides_home_region(self):
        policy = RegulatoryPinning({"gov-se": "se-germany"})
        subscriber = FakeSubscriber(home_region="spain", organisation="gov-se")
        assert policy.choose(subscriber, self.candidates()) == "se-germany"
        assert policy.pinned_placements == 1

    def test_regulatory_pinning_delegates_when_unpinned(self):
        policy = RegulatoryPinning({})
        subscriber = FakeSubscriber(home_region="spain")
        assert policy.choose(subscriber, self.candidates()) == "se-spain"

    def test_no_capacity_anywhere_raises(self):
        policy = RoundRobinPlacement()
        with pytest.raises(ValueError):
            policy.choose(FakeSubscriber(),
                          [PlacementCandidate("se", "spain", has_capacity=False)])

    def test_abstract_policy_rejects_use(self):
        with pytest.raises(NotImplementedError):
            PlacementPolicy().choose(FakeSubscriber(), self.candidates())


class TestProvisionedLocator:
    def test_register_then_locate(self):
        locator = ProvisionedLocator()
        locator.register({IdentityType.IMSI: "1", IdentityType.MSISDN: "34"},
                         "se-0")
        assert locator.locate(IdentityType.IMSI, "1") == "se-0"
        assert locator.stats.hits == 1

    def test_miss_counts_and_raises(self):
        locator = ProvisionedLocator()
        with pytest.raises(UnknownIdentity):
            locator.locate(IdentityType.IMSI, "absent")
        assert locator.stats.misses == 1

    def test_lookups_blocked_while_syncing(self):
        locator = ProvisionedLocator()
        locator.register({IdentityType.IMSI: "1"}, "se-0")
        locator.begin_sync(total_entries=10)
        with pytest.raises(LocatorSyncInProgress):
            locator.locate(IdentityType.IMSI, "1")
        locator.complete_sync()
        assert locator.locate(IdentityType.IMSI, "1") == "se-0"

    def test_export_import_entries(self):
        source = ProvisionedLocator()
        source.register({IdentityType.IMSI: "1"}, "se-3")
        target = ProvisionedLocator()
        target.import_entries(source.export_entries())
        assert target.locate(IdentityType.IMSI, "1") == "se-3"


class TestCachedLocator:
    def make_locator(self, mapping, fanout=4):
        return CachedLocator(
            authority=lambda itype, value: mapping.get((itype, value)),
            fanout=fanout)

    def test_miss_then_hit(self):
        locator = self.make_locator({(IdentityType.IMSI, "1"): "se-2"})
        assert locator.locate(IdentityType.IMSI, "1") == "se-2"
        assert locator.stats.misses == 1
        assert locator.locate(IdentityType.IMSI, "1") == "se-2"
        assert locator.stats.hits == 1
        assert locator.stats.broadcasts == 1

    def test_miss_charges_broadcast_fanout(self):
        locator = self.make_locator({(IdentityType.IMSI, "1"): "se-2"}, fanout=16)
        locator.locate(IdentityType.IMSI, "1")
        assert locator.stats.elements_queried_on_miss == 16

    def test_unknown_identity_raises(self):
        locator = self.make_locator({})
        with pytest.raises(UnknownIdentity):
            locator.locate(IdentityType.IMSI, "none")

    def test_registration_prewarms_cache(self):
        locator = self.make_locator({})
        locator.register({IdentityType.IMSI: "1"}, "se-9")
        assert locator.locate(IdentityType.IMSI, "1") == "se-9"
        assert locator.stats.broadcasts == 0

    def test_invalidate_forces_new_broadcast(self):
        locator = self.make_locator({(IdentityType.IMSI, "1"): "se-2"})
        locator.locate(IdentityType.IMSI, "1")
        locator.invalidate({IdentityType.IMSI: "1"})
        locator.locate(IdentityType.IMSI, "1")
        assert locator.stats.broadcasts == 2

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            CachedLocator(authority=lambda t, v: None, fanout=0)


class TestConsistentHashLocator:
    def test_locate_never_misses(self):
        locator = ConsistentHashLocator(["se-0", "se-1"])
        assert locator.locate(IdentityType.IMSI, "1") in {"se-0", "se-1"}

    def test_identities_of_same_subscriber_hash_apart(self):
        """The paper's objection: each identity needs its own data replica."""
        locator = ConsistentHashLocator([f"se-{i}" for i in range(8)])
        placements = locator.placement_for(
            {IdentityType.IMSI: "214070000000001",
             IdentityType.MSISDN: "34600000001",
             IdentityType.IMPU: "sip:alice@ims.example"})
        assert len(set(placements.values())) > 1

    def test_storage_overhead_equals_identity_count(self):
        locator = ConsistentHashLocator(["se-0"],
                                        identity_types=[IdentityType.IMSI,
                                                        IdentityType.MSISDN])
        assert locator.storage_overhead_factor == 2

    def test_selective_placement_unsupported(self):
        locator = ConsistentHashLocator(["se-0"])
        assert locator.supports_selective_placement is False


class TestMapSynchroniser:
    def test_estimate_scales_with_entries(self):
        synchroniser = MapSynchroniser()
        small = synchroniser.estimate(10_000)
        large = synchroniser.estimate(10_000_000)
        assert large.duration > small.duration
        assert large.bytes_transferred == 1000 * small.bytes_transferred

    def test_estimate_rejects_negative(self):
        with pytest.raises(ValueError):
            MapSynchroniser().estimate(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MapSynchroniser(entry_bytes=0)
        with pytest.raises(ValueError):
            MapSynchroniser(chunk_entries=0)

    def test_simulated_sync_blocks_target_until_done(self):
        sim = Simulation(seed=5)
        topology = make_multinational_topology()
        network = Network(sim, topology)
        source = ProvisionedLocator()
        for i in range(1000):
            source.register({IdentityType.IMSI: f"{i:05d}"}, "se-0")
        target = ProvisionedLocator()
        synchroniser = MapSynchroniser(chunk_entries=100)

        def run_sync(sim):
            yield from synchroniser.sync(
                sim, network, topology.site("spain-dc1"),
                topology.site("sweden-dc1"), source, target)

        process = sim.process(run_sync(sim))
        sim.run(until=0.001)
        assert target.syncing
        with pytest.raises(LocatorSyncInProgress):
            target.locate(IdentityType.IMSI, "00001")
        sim.run()
        assert process.ok
        assert not target.syncing
        assert target.locate(IdentityType.IMSI, "00001") == "se-0"
        assert sim.now > 0, "the sync took simulated time"
