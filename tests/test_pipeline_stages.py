"""Tests for the staged operation pipeline: stages in isolation, the per-PoA
location-cache fast path and its invalidation, and batched metrics."""

import pytest

from repro.core import ClientType, UDRConfig
from repro.core.pipeline import OperationContext, OperationFailure
from repro.directory.errors import LocatorSyncInProgress
from repro.ldap import ResultCode, SearchRequest, SubscriberSchema
from repro.ldap.server import OperationPlan, PlanKind
from repro.net import NetworkPartition

from tests.conftest import build_udr, fe_site_for, run_to_completion


def search_for(profile):
    return SearchRequest(dn=SubscriberSchema.subscriber_dn(
        profile.identities.imsi))


def read_plan(profile):
    return OperationPlan(kind=PlanKind.READ, identity_type="imsi",
                         identity_value=profile.identities.imsi)


def make_context(udr, profile, poa=None):
    ctx = OperationContext(search_for(profile), ClientType.APPLICATION_FE,
                           udr.topology.sites[0], start=udr.sim.now)
    ctx.poa = poa or udr.points_of_access[0]
    ctx.plan = read_plan(profile)
    return ctx


class TestLocationCacheFastPath:
    def test_repeat_read_hits_cache_and_skips_locator(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        site = fe_site_for(udr, profile)
        run_to_completion(udr, udr.execute(
            search_for(profile), ClientType.APPLICATION_FE, site))
        serving_poa = next(poa for poa in udr.points_of_access
                           if poa.site == site)
        cache = udr.location_caches.cache(serving_poa.name)
        assert cache is not None
        assert cache.stats.misses == 1
        lookups_before = serving_poa.locator.stats.lookups
        run_to_completion(udr, udr.execute(
            search_for(profile), ClientType.APPLICATION_FE, site))
        assert cache.stats.hits == 1
        assert serving_poa.locator.stats.lookups == lookups_before, \
            "the repeat resolution was served by the cache, not the locator"

    def test_cache_disabled_by_config(self):
        config = UDRConfig(location_cache_enabled=False, seed=7)
        udr, profiles = build_udr(config=config)
        profile = profiles[0]
        site = fe_site_for(udr, profile)
        for _ in range(2):
            response = run_to_completion(udr, udr.execute(
                search_for(profile), ClientType.APPLICATION_FE, site))
            assert response.ok
        assert len(udr.location_caches) == 0

    def test_bounded_cache_capacity_respected(self):
        config = UDRConfig(location_cache_capacity=1, seed=7)
        udr, profiles = build_udr(config=config)
        same_region = [p for p in profiles
                       if p.home_region == profiles[0].home_region][:2]
        site = fe_site_for(udr, same_region[0])
        for profile in same_region:
            run_to_completion(udr, udr.execute(
                search_for(profile), ClientType.APPLICATION_FE, site))
        serving_poa = next(poa for poa in udr.points_of_access
                           if poa.site == site)
        cache = udr.location_caches.cache(serving_poa.name)
        assert len(cache) == 1


class TestCacheInvalidation:
    def test_fail_over_invalidates_cached_locations(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        imsi = profile.identities.imsi
        site = fe_site_for(udr, profile)
        run_to_completion(udr, udr.execute(
            search_for(profile), ClientType.APPLICATION_FE, site))
        element_name = next(iter(udr.locators.values())).locate("imsi", imsi)
        assert any(cache.get("imsi", imsi) == element_name
                   for cache in udr.location_caches.caches.values())
        udr.crash_element(element_name)
        promotions = udr.fail_over(element_name)
        assert promotions
        for cache in udr.location_caches.caches.values():
            assert cache.get("imsi", imsi) is None, \
                "fail-over dropped the cached location"
        # The next read re-resolves through the locator and still succeeds.
        response = run_to_completion(udr, udr.execute(
            search_for(profile), ClientType.APPLICATION_FE, site))
        assert response.ok

    def test_delete_invalidates_every_poa_cache(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[1]
        imsi = profile.identities.imsi
        # Warm two different PoA caches with the subscriber's location.
        for site in udr.topology.sites[:2]:
            run_to_completion(udr, udr.execute(
                search_for(profile), ClientType.APPLICATION_FE, site))
        from repro.ldap import DeleteRequest
        run_to_completion(udr, udr.execute(
            DeleteRequest(dn=SubscriberSchema.subscriber_dn(imsi)),
            ClientType.PROVISIONING, udr.topology.sites[0]))
        for cache in udr.location_caches.caches.values():
            assert cache.get("imsi", imsi) is None

    def test_syncing_locator_bypasses_and_clears_the_cache(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        poa = udr.points_of_access[0]
        cache = udr.location_caches.for_poa(poa)
        cache.store("imsi", profile.identities.imsi, "se-stale")
        poa.locator.begin_sync(total_entries=100)
        ctx = make_context(udr, profile, poa=poa)
        with pytest.raises(OperationFailure) as failure:
            udr.pipeline.locate.run(ctx)
        assert failure.value.code is ResultCode.BUSY
        assert len(cache) == 0, \
            "entries cached before the sync began are dropped"
        poa.locator.complete_sync()


class TestStagesInIsolation:
    def test_locate_stage_unknown_identity_maps_to_no_such_object(
            self, fresh_udr):
        udr, profiles = fresh_udr
        ctx = make_context(udr, profiles[0])
        ctx.plan = OperationPlan(kind=PlanKind.READ, identity_type="imsi",
                                 identity_value="999999999999999")
        with pytest.raises(OperationFailure) as failure:
            udr.pipeline.locate.run(ctx)
        assert failure.value.code is ResultCode.NO_SUCH_OBJECT

    def test_locate_stage_lets_creates_through_on_unknown_identity(
            self, fresh_udr):
        udr, profiles = fresh_udr
        ctx = make_context(udr, profiles[0])
        ctx.plan = OperationPlan(kind=PlanKind.CREATE, identity_type="imsi",
                                 identity_value="999999999999999",
                                 attributes={"imsi": "999999999999999"})
        udr.pipeline.locate.run(ctx)
        assert ctx.located_element is None

    def test_admission_fails_without_a_serving_poa(self, fresh_udr):
        udr, profiles = fresh_udr
        for poa in udr.points_of_access:
            poa.fail()
        response = run_to_completion(udr, udr.execute(
            search_for(profiles[0]), ClientType.APPLICATION_FE,
            udr.topology.sites[0]))
        assert response.result_code is ResultCode.UNAVAILABLE
        assert response.diagnostic_message == "no reachable PoA"

    def test_respond_stage_counts_lost_responses(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        poa = udr.points_of_access[0]
        client_site = next(site for site in udr.topology.sites
                           if site.region != poa.site.region)
        ctx = OperationContext(search_for(profile),
                               ClientType.APPLICATION_FE, client_site,
                               start=udr.sim.now)
        ctx.poa = poa
        partition = NetworkPartition.splitting_regions(udr.topology,
                                                       poa.site.region)
        udr.network.apply_partition(partition)
        run_to_completion(udr, udr.pipeline.respond.run(ctx))
        udr.flush_metrics()
        assert udr.metrics.counter("response_lost") == 1

class TestBatchedMetrics:
    def test_default_batch_flushes_per_request(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        run_to_completion(udr, udr.execute(
            search_for(profile), ClientType.APPLICATION_FE,
            fe_site_for(udr, profile)))
        outcomes = udr.metrics.outcomes(ClientType.APPLICATION_FE.value)
        assert outcomes.attempted == 1

    def test_larger_batches_defer_and_then_flush(self):
        config = UDRConfig(metrics_batch_size=10, seed=7)
        udr, profiles = build_udr(config=config)
        client = ClientType.APPLICATION_FE
        for profile in profiles[:3]:
            run_to_completion(udr, udr.execute(
                search_for(profile), client, fe_site_for(udr, profile)))
        assert udr.metrics.outcomes(client.value).attempted == 0, \
            "records are buffered until the batch threshold"
        assert udr.pipeline.batch.pending > 0
        udr.flush_metrics()
        assert udr.metrics.outcomes(client.value).attempted == 3
        assert udr.metrics.latency(client.value).count == 3

    def test_batch_auto_flushes_at_threshold(self):
        config = UDRConfig(metrics_batch_size=2, seed=7)
        udr, profiles = build_udr(config=config)
        client = ClientType.APPLICATION_FE
        for profile in profiles[:2]:
            run_to_completion(udr, udr.execute(
                search_for(profile), client, fe_site_for(udr, profile)))
        assert udr.metrics.outcomes(client.value).attempted == 2

    def test_stop_flushes_pending_metrics(self):
        config = UDRConfig(metrics_batch_size=100, seed=7)
        udr, profiles = build_udr(config=config)
        client = ClientType.APPLICATION_FE
        run_to_completion(udr, udr.execute(
            search_for(profiles[0]), client, fe_site_for(udr, profiles[0])))
        udr.stop()
        assert udr.metrics.outcomes(client.value).attempted == 1
