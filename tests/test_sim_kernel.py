"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulation,
    SimulationError,
    Timeout,
    units,
)


class TestClock:
    def test_time_starts_at_zero(self):
        sim = Simulation()
        assert sim.now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulation()
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_run_until_stops_before_future_events(self):
        sim = Simulation()
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [10.0]

    def test_run_until_past_time_rejected(self):
        sim = Simulation()
        sim.run(until=5.0)
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_for_is_relative(self):
        sim = Simulation()
        sim.run_for(3.0)
        sim.run_for(4.0)
        assert sim.now == 7.0

    def test_peek_reports_next_event_time(self):
        sim = Simulation()
        assert sim.peek() == float("inf")
        sim.timeout(4.0)
        assert sim.peek() == 4.0

    def test_negative_timeout_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulation()
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("hello")
        sim.run()
        assert seen == ["hello"]

    def test_double_trigger_rejected(self):
        sim = Simulation()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_unwaited_failure_surfaces(self):
        sim = Simulation()
        sim.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_callback_after_processing_runs_immediately(self):
        sim = Simulation()
        event = sim.event()
        event.succeed(41)
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value + 1))
        assert seen == [42]

    def test_value_before_trigger_raises(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            _ = sim.event().value


class TestProcesses:
    def test_process_runs_and_returns_value(self):
        sim = Simulation()

        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "done"

        process = sim.process(proc(sim))
        sim.run()
        assert process.ok
        assert process.value == "done"
        assert sim.now == 3.0

    def test_processes_interleave_in_time_order(self):
        sim = Simulation()
        order = []

        def proc(sim, label, delay):
            yield sim.timeout(delay)
            order.append((label, sim.now))

        sim.process(proc(sim, "slow", 5.0))
        sim.process(proc(sim, "fast", 1.0))
        sim.run()
        assert order == [("fast", 1.0), ("slow", 5.0)]

    def test_process_waits_on_other_process(self):
        sim = Simulation()

        def child(sim):
            yield sim.timeout(2.0)
            return 10

        def parent(sim):
            value = yield sim.process(child(sim))
            return value * 2

        parent_proc = sim.process(parent(sim))
        sim.run()
        assert parent_proc.value == 20

    def test_exception_in_process_propagates_to_waiter(self):
        sim = Simulation()

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("broken")

        def waiter(sim, log):
            try:
                yield sim.process(failing(sim))
            except ValueError as exc:
                log.append(str(exc))

        log = []
        sim.process(waiter(sim, log))
        sim.run()
        assert log == ["broken"]

    def test_uncaught_process_exception_surfaces(self):
        sim = Simulation()

        def failing(sim):
            yield sim.timeout(1.0)
            raise ValueError("unseen")

        sim.process(failing(sim))
        with pytest.raises(ValueError, match="unseen"):
            sim.run()

    def test_yielding_non_event_fails_process(self):
        sim = Simulation()

        def bad(sim):
            yield 42

        process = sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()
        assert not process.ok

    def test_process_requires_generator(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)

    def test_interrupt_delivers_cause(self):
        sim = Simulation()
        causes = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                causes.append((sim.now, interrupt.cause))
                return "interrupted"

        process = sim.process(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1.0)
            process.interrupt("blade failure")

        sim.process(interrupter(sim))
        sim.run()
        assert causes == [(1.0, "blade failure")]
        assert process.value == "interrupted"

    def test_interrupting_finished_process_is_noop(self):
        sim = Simulation()

        def quick(sim):
            yield sim.timeout(0.5)

        process = sim.process(quick(sim))
        sim.run()
        process.interrupt("late")  # must not raise
        assert process.ok


class TestConditions:
    def test_all_of_collects_values(self):
        sim = Simulation()
        condition = sim.all_of([sim.timeout(1.0, value="a"),
                                sim.timeout(3.0, value="b")])
        results = []
        condition.add_callback(lambda e: results.append((sim.now, e.value)))
        sim.run()
        assert results == [(3.0, ["a", "b"])]

    def test_any_of_returns_first(self):
        sim = Simulation()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        condition = sim.any_of([fast, slow])
        results = []
        condition.add_callback(lambda e: results.append(e.value))
        sim.run()
        winner, value = results[0]
        assert winner is fast
        assert value == "fast"

    def test_empty_all_of_triggers_immediately(self):
        sim = Simulation()
        condition = sim.all_of([])
        assert condition.triggered

    def test_all_of_with_processed_children_waits_for_pending_ones(self):
        """Regression: AllOf over a mix of already-processed and pending
        events must wait for the pending ones.  The incremental pending
        count used to hit zero after the first processed child, triggering
        the condition while later children were still outstanding."""
        sim = Simulation()
        done_early = sim.event("early")
        done_early.succeed("early")
        sim.run()  # process the early event fully
        late = sim.timeout(5.0, value="late")
        condition = sim.all_of([done_early, late])
        assert not condition.triggered
        results = []
        condition.add_callback(lambda e: results.append((sim.now, e.value)))
        sim.run()
        assert results == [(5.0, ["early", "late"])]

    def test_all_of_fails_when_child_fails(self):
        sim = Simulation()

        def failing(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("child failed")

        def waiter(sim, log):
            try:
                yield sim.all_of([sim.process(failing(sim)), sim.timeout(5.0)])
            except RuntimeError as exc:
                log.append(str(exc))

        log = []
        sim.process(waiter(sim, log))
        sim.run()
        assert log == ["child failed"]


class TestDeterminism:
    def test_same_seed_same_samples(self):
        first = [Simulation(seed=11).rng("net").random() for _ in range(5)]
        second = [Simulation(seed=11).rng("net").random() for _ in range(5)]
        assert first == second

    def test_different_streams_are_independent(self):
        sim = Simulation(seed=11)
        a = sim.rng("net").random()
        b = sim.rng("workload").random()
        assert a != b

    def test_named_stream_is_cached(self):
        sim = Simulation(seed=3)
        assert sim.rng("x") is sim.rng("x")


class TestUnits:
    def test_five_nines_downtime_budget(self):
        budget = units.downtime_budget(units.FIVE_NINES)
        assert budget == pytest.approx(315.36, rel=1e-3)

    def test_availability_from_downtime_roundtrip(self):
        downtime = units.downtime_budget(0.999)
        assert units.availability_from_downtime(downtime) == pytest.approx(0.999)

    def test_millisecond_conversions(self):
        assert units.milliseconds(10) == pytest.approx(0.010)
        assert units.to_milliseconds(0.010) == pytest.approx(10.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            units.downtime_budget(1.5)
        with pytest.raises(ValueError):
            units.availability_from_downtime(1.0, period=0.0)
