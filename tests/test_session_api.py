"""The session API's contracts.

Three suites pin down PR 5's front-door redesign:

* **equivalence** -- sessioned traffic (``Session.call`` / ``submit`` /
  ``submit_many``) with *no* QoS overrides produces the same result codes
  and the same final store state as the legacy
  ``execute``/``submit``/``execute_batch`` entry points on seeded traces,
  across both dispatch modes;
* **deadline matrix** -- ``QoSProfile.deadline_ticks`` short-circuits
  expired work with ``TIME_LIMIT_EXCEEDED`` on every path (direct,
  dispatcher queue, batch fan-out, retry backoff) without consuming
  pipeline hops, while generous deadlines change nothing;
* **deprecation shims** -- the legacy entry points keep working, delegate
  to the same machinery, and count ``api.legacy_calls``.
"""

import random

import pytest

from repro.api import (
    DEADLINE_TICK,
    Operation,
    Provision,
    QoSProfile,
    Read,
    Search,
    Write,
    as_request,
)
from repro.core import (
    ClientType,
    DispatchMode,
    Priority,
    RetryPolicy,
    UDRConfig,
)
from repro.core.pipeline import BatchItem
from repro.ldap import AddRequest, DeleteRequest, ModifyRequest, SearchRequest
from repro.ldap.operations import ResultCode
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion

SUBSCRIBERS = 40


# ---------------------------------------------------------------- helpers

def seeded_operations(udr, profiles, seed, operations=30):
    """A random, order-insensitive typed-operation mix.

    Same shape rules as the batch-equivalence workload: at most one write
    per subscriber, deleted subscribers never otherwise addressed, created
    subscribers fresh -- so codes are comparable across admission orders.
    Returns ``(operation, client_type, site)`` triples.
    """
    rng = random.Random(seed)
    shuffled = list(profiles)
    rng.shuffle(shuffled)
    deletable = [shuffled.pop() for _ in range(4)]
    modifiable = [shuffled.pop() for _ in range(8)]
    readable = list(shuffled)
    fresh = SubscriberGenerator(udr.config.regions,
                                seed=seed + 9000).generate(5)
    ps_site = udr.topology.sites[0]
    triples = []
    for index in range(operations):
        choice = rng.random()
        if choice < 0.45 or not (modifiable or deletable or fresh):
            profile = rng.choice(readable)
            operation = (Search("msisdn", profile.identities.msisdn)
                         if index % 5 == 0
                         else Read(profile.identities.imsi))
            triples.append((operation, ClientType.APPLICATION_FE,
                            fe_site_for(udr, profile)))
        elif choice < 0.7 and modifiable:
            profile = modifiable.pop()
            triples.append((Write(profile.identities.imsi,
                                  {"servingMsc": f"msc-{seed}"}),
                            rng.choice([ClientType.APPLICATION_FE,
                                        ClientType.PROVISIONING]),
                            fe_site_for(udr, profile)))
        elif choice < 0.85 and fresh:
            profile = fresh.pop()
            triples.append((Provision.create(profile.to_record()),
                            ClientType.PROVISIONING, ps_site))
        elif deletable:
            profile = deletable.pop()
            triples.append((Provision.terminate(profile.identities.imsi),
                            ClientType.PROVISIONING, ps_site))
        else:
            profile = rng.choice(readable)
            triples.append((Read(profile.identities.imsi),
                            ClientType.APPLICATION_FE,
                            fe_site_for(udr, profile)))
    return triples


def store_state(udr):
    """Record values on every copy, after letting replication drain."""
    udr.sim.run_for(5.0)
    state = {}
    for set_name, replica_set in udr.replica_sets.items():
        for member in replica_set.member_names:
            copy = replica_set.copy_on(member)
            state[(set_name, member)] = {key: copy.store.get(key)
                                         for key in copy.store.keys()}
    return state


class SessionPool:
    """One session per ``(client type, site)``, mirroring real attachments."""

    def __init__(self, udr, qos=None):
        self.udr = udr
        self.qos = qos
        self._sessions = {}

    def session_for(self, client_type, site):
        key = (client_type, site)
        if key not in self._sessions:
            client = self.udr.attach(
                f"{client_type.value}@{site.name}", site,
                client_type=client_type, qos=self.qos)
            self._sessions[key] = client.session()
        return self._sessions[key]


# ------------------------------------------------------------- encoding

class TestOperationEncoding:
    def test_read_encodes_to_base_search(self):
        request = Read("123", attributes=("authKey",)).to_request()
        assert isinstance(request, SearchRequest)
        assert "123" in str(request.dn)
        assert request.attributes == ("authKey",)
        assert not request.is_write

    def test_search_encodes_identity_filter(self):
        request = Search("msisdn", "46700000001").to_request()
        assert isinstance(request, SearchRequest)
        assert "(msisdn=46700000001)" in request.filter_text

    def test_search_rejects_unknown_identity_type(self):
        with pytest.raises(ValueError):
            Search("iccid", "x")

    def test_write_encodes_to_modify(self):
        request = Write("123", {"servingMsc": "m"}).to_request()
        assert isinstance(request, ModifyRequest)
        assert request.changes == {"servingMsc": "m"}
        assert request.is_write

    def test_provision_create_and_terminate(self):
        create = Provision.create({"imsi": "123", "msisdn": "46"})
        assert isinstance(create.to_request(), AddRequest)
        terminate = Provision.terminate("123")
        assert isinstance(terminate.to_request(), DeleteRequest)
        with pytest.raises(ValueError):
            Provision()
        with pytest.raises(ValueError):
            Provision.create({"msisdn": "46"})

    def test_as_request_passthrough_and_rejection(self):
        request = Read("1").to_request()
        assert as_request(request) is request
        assert isinstance(as_request(Read("1")), SearchRequest)
        with pytest.raises(TypeError):
            as_request("not an operation")


# ---------------------------------------------------------- equivalence

class TestSessionEquivalence:
    def _legacy_direct(self, seed):
        udr, profiles = build_udr(subscribers=SUBSCRIBERS, seed=seed)
        codes = []
        for operation, client_type, site in seeded_operations(
                udr, profiles, seed):
            response = run_to_completion(
                udr, udr.execute(operation.to_request(), client_type, site))
            codes.append(response.result_code.name)
        return codes, store_state(udr)

    def _session_direct(self, seed):
        udr, profiles = build_udr(subscribers=SUBSCRIBERS, seed=seed)
        pool = SessionPool(udr)
        codes = []
        for operation, client_type, site in seeded_operations(
                udr, profiles, seed):
            session = pool.session_for(client_type, site)
            response = run_to_completion(udr, session.call(operation))
            codes.append(response.result_code.name)
        return codes, store_state(udr)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_direct_call_matches_legacy_execute(self, seed):
        legacy_codes, legacy_state = self._legacy_direct(seed)
        session_codes, session_state = self._session_direct(seed)
        assert session_codes == legacy_codes
        assert session_state == legacy_state
        assert "SUCCESS" in session_codes

    def _dispatcher_config(self, seed):
        return UDRConfig(seed=seed, dispatch_mode=DispatchMode.DISPATCHER,
                         batch_linger_ticks=5)

    def _run_dispatched(self, udr, triples, submit, handles):
        def arrivals():
            for operation, client_type, site in triples:
                yield udr.sim.timeout(0.002)
                handles.append(submit(operation, client_type, site))

        run_to_completion(udr, arrivals())

    @pytest.mark.parametrize("seed", [5])
    def test_dispatcher_submit_matches_legacy_submit(self, seed):
        legacy_udr, legacy_profiles = build_udr(
            self._dispatcher_config(seed), subscribers=SUBSCRIBERS, seed=seed)
        triples = seeded_operations(legacy_udr, legacy_profiles, seed)
        tickets = []
        self._run_dispatched(
            legacy_udr, triples,
            lambda op, client_type, site: legacy_udr.submit(
                op.to_request(), client_type, site), tickets)

        def wait_tickets():
            yield legacy_udr.sim.all_of([t.event for t in tickets])

        run_to_completion(legacy_udr, wait_tickets())
        legacy_codes = [t.event.value.result_code.name for t in tickets]
        legacy_state = store_state(legacy_udr)

        session_udr, session_profiles = build_udr(
            self._dispatcher_config(seed), subscribers=SUBSCRIBERS, seed=seed)
        pool = SessionPool(session_udr)
        futures = []
        self._run_dispatched(
            session_udr, seeded_operations(session_udr, session_profiles,
                                           seed),
            lambda op, client_type, site:
            pool.session_for(client_type, site).submit(op), futures)

        def drain():
            for future in futures:
                yield from future.wait()

        run_to_completion(session_udr, drain())
        session_codes = [f.result().result_code.name for f in futures]
        assert session_codes == legacy_codes
        assert store_state(session_udr) == legacy_state

    @pytest.mark.parametrize("seed", [11])
    def test_batch_matches_legacy_execute_batch(self, seed):
        # Single-client batches (one PS at one site), so the legacy
        # BatchItem list and the session's submit_many describe the same
        # admission problem.
        legacy_udr, profiles = build_udr(subscribers=SUBSCRIBERS, seed=seed)
        operations = [Write(profile.identities.imsi,
                            {"svcBarPremium": bool(index % 2)})
                      for index, profile in enumerate(profiles[:16])]
        ps_site = legacy_udr.topology.sites[0]
        items = [BatchItem(operation.to_request(), ClientType.PROVISIONING,
                           ps_site) for operation in operations]
        responses = run_to_completion(legacy_udr,
                                      legacy_udr.execute_batch(items))
        legacy_codes = [r.result_code.name for r in responses]
        legacy_state = store_state(legacy_udr)

        session_udr, _ = build_udr(subscribers=SUBSCRIBERS, seed=seed)
        client = session_udr.attach("ps", session_udr.topology.sites[0],
                                    client_type=ClientType.PROVISIONING)
        with client.session() as session:
            batch_responses = run_to_completion(
                session_udr, session.execute_batch(operations))
        assert [r.result_code.name for r in batch_responses] == legacy_codes
        assert store_state(session_udr) == legacy_state


# ------------------------------------------------------- deadline matrix

class TestDeadlineMatrix:
    def test_direct_zero_deadline_short_circuits(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0],
                            qos=QoSProfile(deadline_ticks=0))
        transfers_before = udr.network.stats.total_messages()
        response = run_to_completion(
            udr, client.session().call(Read(profiles[0].identities.imsi)))
        assert response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        assert response.latency == 0.0, "no pipeline hops were consumed"
        assert udr.network.stats.total_messages() == transfers_before
        udr.flush_metrics()
        assert udr.metrics.counter("api.deadline_expired") == 1

    def test_direct_generous_deadline_is_invisible(self):
        udr, profiles = build_udr(subscribers=8)
        operation = Read(profiles[0].identities.imsi)
        baseline = run_to_completion(
            udr, udr.execute(operation.to_request(),
                             ClientType.APPLICATION_FE,
                             udr.topology.sites[0]))
        client = udr.attach("fe", udr.topology.sites[0],
                            qos=QoSProfile(deadline_ticks=60_000))
        response = run_to_completion(udr, client.session().call(operation))
        assert response.result_code is ResultCode.SUCCESS
        assert baseline.result_code is ResultCode.SUCCESS

    def test_dispatcher_expires_queued_tickets_at_wave_formation(self):
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_linger_ticks=50)
        udr, profiles = build_udr(config, subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0],
                            qos=QoSProfile(deadline_ticks=1))
        session = client.session()
        future = session.submit(Read(profiles[0].identities.imsi))
        response = run_to_completion(udr, future.wait())
        assert response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        assert "dispatch queue" in response.diagnostic_message
        assert udr.metrics.counter("dispatcher.deadline_expired") == 1
        # The expired ticket consumed no wave slot.
        assert udr.metrics.counter("dispatcher.dispatched") == 0

    def test_batch_deadline_short_circuits_fan_out(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach("ps", udr.topology.sites[0],
                            client_type=ClientType.PROVISIONING,
                            qos=QoSProfile(deadline_ticks=0))
        with client.session() as session:
            responses = run_to_completion(
                udr, session.execute_batch(
                    [Write(p.identities.imsi, {"svcBarPremium": True})
                     for p in profiles[:4]]))
        assert all(r.result_code is ResultCode.TIME_LIMIT_EXCEEDED
                   for r in responses)
        # The batch still answered (admission happened), but no write ran.
        state = {key for rs in udr.replica_sets.values()
                 for key in rs.master_copy.store.keys()}
        assert state, "subscriber base still present"
        assert udr.metrics.counter("api.deadline_expired") == 4

    def test_deadline_cuts_retry_backoff(self):
        """A retryable failure with a deadline shorter than the backoff
        answers TIME_LIMIT_EXCEEDED instead of sleeping into expiry."""
        policy = RetryPolicy(max_retries=3, backoff_tick=0.05)
        udr, profiles = build_udr(subscribers=8)
        profile = profiles[0]
        element = udr.deployment.authoritative_lookup(
            "imsi", profile.identities.imsi)
        replica_set = udr.deployment.replica_set_of_element(element)
        for member in replica_set.member_names:
            udr.crash_element(member)
        client = udr.attach(
            "fe", udr.topology.sites[0],
            qos=QoSProfile(retry_policy=policy, deadline_ticks=20))
        response = run_to_completion(
            udr, client.session().call(Read(profile.identities.imsi)))
        assert response.result_code is ResultCode.TIME_LIMIT_EXCEEDED
        # The first attempt ran (and failed) before the backoff-vs-deadline
        # refusal, and the accounting must say so; only the backoff itself
        # was never slept.
        assert response.attempts == 1, "the failed first attempt counts"
        assert udr.sim.now < 0.01, "the backoff was never slept"

    def test_retry_policy_override_applies_to_single_operations(self):
        """Without a deadline the same session retries the transient
        failure -- per-session QoS brings retries to the sequential path,
        which the legacy execute never had."""
        policy = RetryPolicy(max_retries=2, backoff_tick=0.01)
        udr, profiles = build_udr(subscribers=8)
        profile = profiles[0]
        element = udr.deployment.authoritative_lookup(
            "imsi", profile.identities.imsi)
        replica_set = udr.deployment.replica_set_of_element(element)
        for member in replica_set.member_names:
            udr.crash_element(member)
        legacy = run_to_completion(
            udr, udr.execute(Read(profile.identities.imsi).to_request(),
                             ClientType.APPLICATION_FE,
                             udr.topology.sites[0]))
        assert legacy.result_code is ResultCode.UNAVAILABLE
        assert legacy.attempts == 0
        client = udr.attach("fe", udr.topology.sites[0],
                            qos=QoSProfile(retry_policy=policy))
        response = run_to_completion(
            udr, client.session().call(Read(profile.identities.imsi)))
        assert response.result_code is ResultCode.UNAVAILABLE
        assert response.attempts == policy.max_retries


# ------------------------------------------------------------------ shims

class TestDeprecationShims:
    def test_legacy_entry_points_are_counted(self):
        udr, profiles = build_udr(subscribers=8)
        request = Read(profiles[0].identities.imsi).to_request()
        site = udr.topology.sites[0]
        run_to_completion(udr, udr.execute(request,
                                           ClientType.APPLICATION_FE, site))
        run_to_completion(udr, udr.call(request,
                                        ClientType.APPLICATION_FE, site))
        run_to_completion(udr, udr.execute_batch(
            [request], client_type=ClientType.APPLICATION_FE,
            client_site=site))
        assert udr.metrics.counter("api.legacy_calls") == 3
        assert udr.metrics.counter("api.legacy_calls.execute") == 1
        assert udr.metrics.counter("api.legacy_calls.call") == 1
        assert udr.metrics.counter("api.legacy_calls.execute_batch") == 1

    def test_sessions_do_not_count_as_legacy(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0])
        run_to_completion(
            udr, client.session().call(Read(profiles[0].identities.imsi)))
        assert udr.metrics.counter("api.legacy_calls") == 0

    def test_shim_round_trip_matches_session(self):
        """One operation through the shim and through a session: same code,
        same entry payload."""
        udr, profiles = build_udr(subscribers=8)
        operation = Read(profiles[0].identities.imsi)
        site = udr.topology.sites[0]
        shim = run_to_completion(
            udr, udr.execute(operation.to_request(),
                             ClientType.APPLICATION_FE, site))
        session = run_to_completion(
            udr, udr.attach("fe", site).session().call(operation))
        assert shim.result_code is session.result_code
        assert shim.entry.get("imsi") == session.entry.get("imsi")


# --------------------------------------------------- per-client metrics

class TestPerClientScoping:
    def test_completions_are_tagged_by_client_name(self):
        udr, profiles = build_udr(subscribers=8)
        hlr = udr.attach("hlr-fe-1", udr.topology.sites[0])
        ps = udr.attach("ps-1", udr.topology.sites[0],
                        client_type=ClientType.PROVISIONING)
        hlr_session, ps_session = hlr.session(), ps.session()
        for profile in profiles[:3]:
            run_to_completion(udr,
                              hlr_session.call(Read(profile.identities.imsi)))
        run_to_completion(udr, ps_session.call(
            Write(profiles[0].identities.imsi, {"svcBarPremium": True})))
        assert udr.metrics.counter("api.client.hlr-fe-1.requests") == 3
        assert udr.metrics.counter("api.client.ps-1.requests") == 1
        assert udr.metrics.latency("api.client.hlr-fe-1.latency").count == 3
        assert udr.metrics.latency("api.client.ps-1.latency").count == 1
        assert udr.metrics.counter("api.client.hlr-fe-1.failed") == 0

    def test_failures_count_per_client(self):
        udr, _profiles = build_udr(subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0])
        response = run_to_completion(
            udr, client.session().call(Read("000000000000000")))
        assert not response.ok
        assert udr.metrics.counter("api.client.fe.failed") == 1


# ------------------------------------------------------ session lifecycle

class TestSessionLifecycle:
    def test_closed_session_rejects_new_work(self):
        udr, profiles = build_udr(subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0])
        with client.session() as session:
            pass
        with pytest.raises(RuntimeError):
            session.submit(Read(profiles[0].identities.imsi))

    def test_abandoned_futures_are_counted(self):
        config = UDRConfig(dispatch_mode=DispatchMode.DISPATCHER,
                           batch_linger_ticks=50)
        udr, profiles = build_udr(config, subscribers=8)
        client = udr.attach("fe", udr.topology.sites[0])
        with client.session() as session:
            session.submit(Read(profiles[0].identities.imsi))
        assert udr.metrics.counter("api.session.abandoned") == 1

    def test_qos_layering(self):
        base = QoSProfile(priority=Priority.BULK, deadline_ticks=100)
        override = QoSProfile(deadline_ticks=10)
        layered = base.layered(override)
        assert layered.priority is Priority.BULK
        assert layered.deadline_ticks == 10
        assert base.layered(None) is base
        assert base.deadline_at(1.0) == 1.0 + 100 * DEADLINE_TICK
