"""reprolint: per-rule fixture snippets, baseline semantics, CLI gates.

Three layers of coverage:

* **unit** -- each checker runs over fixture snippets written to a scratch
  tree at the rel_path that puts them in (or out of) the rule's scope:
  at least two positive and two negative cases per rule, including the
  aliased-import evasions the old greps missed and f-string metric names.
* **baseline** -- the committed ``.reprolint-baseline`` stays sorted and
  deduplicated, and ``--baseline`` suppresses *exactly* the baselined
  findings (one of two seeded violations baselined -> one failure left).
* **acceptance** -- the CLI exits 0 on the committed tree and exits
  non-zero when any one of five seeded violations (one per checker) is
  injected into a scratch copy of ``src/``.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    LintEngine,
    format_baseline,
    load_baseline,
)
from repro.analysis.checkers import (
    ApiBoundaryChecker,
    DeterminismChecker,
    ExceptionHygieneChecker,
    LayeringChecker,
    MetricRegistryChecker,
    default_checkers,
    rule_catalogue,
)
from repro.analysis.checkers.layering import find_cycle, parse_layers_toml
from repro.analysis.engine import baseline_is_normalised, parse_module
from repro.analysis.findings import parse_suppressions

REPO_ROOT = Path(__file__).resolve().parent.parent
REPROLINT = REPO_ROOT / "scripts" / "reprolint.py"


def module_at(tmp_path, rel_path, source):
    """Write ``source`` at ``rel_path`` under a scratch root and parse it."""
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    module = parse_module(path, tmp_path)
    assert module is not None, "fixture snippet must parse"
    return module


def rules_of(findings):
    return sorted(finding.rule for finding in findings)


# ---------------------------------------------------------------------------
# determinism (DET001/DET002/DET003)
# ---------------------------------------------------------------------------

class TestDeterminismChecker:
    checker = DeterminismChecker()

    def run(self, tmp_path, source,
            rel_path="src/repro/storage/snippet.py"):
        return list(self.checker.check(
            module_at(tmp_path, rel_path, source)))

    # positives -----------------------------------------------------------

    def test_wall_clock_call(self, tmp_path):
        findings = self.run(tmp_path,
                            "import time\n"
                            "def stamp():\n"
                            "    return time.time()\n")
        assert rules_of(findings) == ["DET001"]

    def test_aliased_wall_clock_import(self, tmp_path):
        findings = self.run(tmp_path,
                            "from time import perf_counter as pc\n"
                            "def stamp():\n"
                            "    return pc()\n")
        assert rules_of(findings) == ["DET001"]
        assert "time.perf_counter" in findings[0].message

    def test_datetime_now_and_urandom(self, tmp_path):
        findings = self.run(tmp_path,
                            "from datetime import datetime\n"
                            "import os\n"
                            "def stamp():\n"
                            "    return datetime.now(), os.urandom(8)\n")
        assert rules_of(findings) == ["DET001", "DET001"]

    def test_module_level_random(self, tmp_path):
        findings = self.run(tmp_path,
                            "import random\n"
                            "def draw():\n"
                            "    return random.random()\n")
        assert rules_of(findings) == ["DET002"]

    def test_aliased_random_and_unseeded_instance(self, tmp_path):
        findings = self.run(tmp_path,
                            "from random import shuffle as mix\n"
                            "import random\n"
                            "def draw(items):\n"
                            "    mix(items)\n"
                            "    return random.Random()\n")
        assert rules_of(findings) == ["DET002", "DET002"]

    def test_transfer_without_stream_in_replication(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def ship(self, a, b):\n"
            "    yield from self.network.transfer(a, b, payload_bytes=64)\n",
            rel_path="src/repro/replication/snippet.py")
        assert rules_of(findings) == ["DET003"]

    def test_transfer_without_stream_in_cdc(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def ship(network, a, b):\n"
            "    yield from network.transfer(a, b)\n",
            rel_path="src/repro/cdc/snippet.py")
        assert rules_of(findings) == ["DET003"]

    # negatives -----------------------------------------------------------

    def test_seeded_random_instance_is_clean(self, tmp_path):
        findings = self.run(tmp_path,
                            "import random\n"
                            "def build(seed):\n"
                            "    return random.Random(seed)\n")
        assert findings == []

    def test_instance_draws_are_clean(self, tmp_path):
        findings = self.run(tmp_path,
                            "def draw(rng):\n"
                            "    return rng.random() + rng.gauss(0, 1)\n")
        assert findings == []

    def test_sim_clock_is_clean(self, tmp_path):
        findings = self.run(tmp_path,
                            "def wait(sim):\n"
                            "    yield sim.timeout(1.0)\n"
                            "    return sim.now\n")
        assert findings == []

    def test_transfer_with_stream_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def ship(self, a, b):\n"
            "    yield from self.network.transfer(\n"
            "        a, b, payload_bytes=64, stream='replication')\n",
            rel_path="src/repro/replication/snippet.py")
        assert findings == []

    def test_transfer_outside_replication_needs_no_stream(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def hop(self, a, b):\n"
            "    yield from self.network.transfer(a, b)\n",
            rel_path="src/repro/core/snippet.py")
        assert findings == []


# ---------------------------------------------------------------------------
# layering (LAY000/LAY001/LAY002)
# ---------------------------------------------------------------------------

LAYERS_TOML = """\
[layers]
sim = []
storage = ["sim"]
core = ["storage", "sim"]
api = ["core", "sim"]

[exceptions]
"repro.core.udr" = ["repro.api"]
"""


class TestLayeringChecker:

    def checker(self, tmp_path):
        layers = tmp_path / "layers.toml"
        layers.write_text(LAYERS_TOML, encoding="utf-8")
        return LayeringChecker(layers_file=layers)

    def run(self, tmp_path, source, rel_path):
        return list(self.checker(tmp_path).check(
            module_at(tmp_path, rel_path, source)))

    # positives -----------------------------------------------------------

    def test_upward_import_flagged(self, tmp_path):
        findings = self.run(tmp_path, "from repro.api import session\n",
                            "src/repro/storage/snippet.py")
        assert rules_of(findings) == ["LAY001"]

    def test_aliased_import_evasion_flagged(self, tmp_path):
        # The two spellings the old grep could not see.
        findings = self.run(
            tmp_path,
            "import repro.api as facade\n"
            "from repro.api.session import Session as S\n",
            "src/repro/storage/snippet.py")
        assert rules_of(findings) == ["LAY001", "LAY001"]

    def test_lazy_function_local_import_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def later():\n"
            "    from repro.api import session\n"
            "    return session\n",
            "src/repro/storage/snippet.py")
        assert rules_of(findings) == ["LAY001"]

    def test_undeclared_package_flagged(self, tmp_path):
        findings = self.run(tmp_path, "from repro.storage import wal\n",
                            "src/repro/mystery/snippet.py")
        assert rules_of(findings) == ["LAY002"]

    def test_cyclic_declaration_reported(self, tmp_path):
        layers = tmp_path / "layers.toml"
        layers.write_text("[layers]\n"
                          'storage = ["core"]\n'
                          'core = ["storage"]\n', encoding="utf-8")
        checker = LayeringChecker(layers_file=layers)
        module = module_at(tmp_path, "src/repro/storage/snippet.py",
                           "import os\n")
        findings = list(checker.check(module))
        assert "LAY000" in rules_of(findings)

    # negatives -----------------------------------------------------------

    def test_downward_import_allowed(self, tmp_path):
        findings = self.run(tmp_path,
                            "from repro.storage import wal\n"
                            "from repro.sim import units\n",
                            "src/repro/core/snippet.py")
        assert findings == []

    def test_same_package_and_stdlib_allowed(self, tmp_path):
        findings = self.run(tmp_path,
                            "import os\n"
                            "from repro.storage.errors import "
                            "StorageError\n",
                            "src/repro/storage/snippet.py")
        assert findings == []

    def test_type_checking_import_exempt(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.api.session import Session\n",
            "src/repro/storage/snippet.py")
        assert findings == []

    def test_exception_grant_allows_the_facade_edge(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def attach():\n"
            "    from repro.api.session import UDRClient\n"
            "    return UDRClient\n",
            "src/repro/core/udr.py")
        assert findings == []

    def test_relative_imports_resolve(self, tmp_path):
        findings = self.run(tmp_path,
                            "from .errors import StorageError\n"
                            "from ..sim import units\n",
                            "src/repro/storage/snippet.py")
        assert findings == []

    # shipped config ------------------------------------------------------

    def test_shipped_layer_map_is_a_dag(self):
        checker = LayeringChecker()
        assert checker.config_findings == []
        assert find_cycle(checker.layers) is None
        assert checker.layers["sim"] == []
        assert "api" not in checker.layers["storage"]
        assert "core" not in checker.layers["replication"]

    def test_toml_subset_parser_multiline_lists(self):
        layers, exceptions = parse_layers_toml(
            '# comment\n'
            '[layers]\n'
            'alpha = []\n'
            'beta = [\n'
            '    "alpha",  # trailing comment\n'
            ']\n'
            '[exceptions]\n'
            '"repro.beta.mod" = ["repro.alpha"]\n')
        assert layers == {"alpha": [], "beta": ["alpha"]}
        assert exceptions == {"repro.beta.mod": ["repro.alpha"]}


# ---------------------------------------------------------------------------
# metric registry (MET001/MET002)
# ---------------------------------------------------------------------------

REGISTRY = """\
# test registry
replication.mux.wakeups
api.client.*.latency
faults.corruption.*
"""


class TestMetricRegistryChecker:

    def checker(self, tmp_path):
        registry = tmp_path / "metric_registry.txt"
        registry.write_text(REGISTRY, encoding="utf-8")
        return MetricRegistryChecker(registry_file=registry)

    def run(self, tmp_path, source):
        return list(self.checker(tmp_path).check(
            module_at(tmp_path, "src/repro/core/snippet.py", source)))

    # positives -----------------------------------------------------------

    def test_typo_in_literal_name(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def wake(metrics):\n"
            "    metrics.increment('replication.mux.wakeup')\n")
        assert rules_of(findings) == ["MET001"]

    def test_unknown_gauge_name(self, tmp_path):
        findings = self.run(tmp_path,
                            "def record(metrics):\n"
                            "    metrics.set_gauge('nope.depth', 3)\n")
        assert rules_of(findings) == ["MET001"]

    def test_fstring_with_typoed_skeleton(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def record(metrics, name):\n"
            "    metrics.latency(f'api.client.{name}.latencies')\n")
        assert rules_of(findings) == ["MET002"]

    def test_fstring_with_unknown_prefix(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def record(metrics, kind):\n"
            "    metrics.increment(f'fault.corruption.{kind}')\n")
        assert rules_of(findings) == ["MET002"]

    # negatives -----------------------------------------------------------

    def test_registered_literal_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def wake(metrics):\n"
            "    metrics.increment('replication.mux.wakeups')\n")
        assert findings == []

    def test_fstring_matching_pattern_is_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def record(metrics, name, kind):\n"
            "    metrics.latency(f'api.client.{name}.latency')\n"
            "    metrics.increment(f'faults.corruption.{kind}')\n")
        assert findings == []

    def test_variable_names_are_wrapper_plumbing(self, tmp_path):
        findings = self.run(tmp_path,
                            "def count(metrics, name):\n"
                            "    metrics.increment(name)\n")
        assert findings == []

    def test_non_emission_reads_unconstrained(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def read(metrics):\n"
            "    return metrics.counter('anything.goes'), "
            "metrics.counters_with_prefix('what.')\n")
        assert findings == []

    def test_shipped_registry_covers_the_tree(self):
        checker = MetricRegistryChecker()
        engine = LintEngine(REPO_ROOT, checkers=[checker])
        report = engine.run()
        assert report.findings == [], \
            [finding.render() for finding in report.findings]
        assert checker.known("replication.mux.wakeups")
        assert not checker.known("replication.mux.wakeup")


# ---------------------------------------------------------------------------
# API boundary (API001/API002)
# ---------------------------------------------------------------------------

class TestApiBoundaryChecker:
    checker = ApiBoundaryChecker()

    def run(self, tmp_path, source,
            rel_path="src/repro/experiments/snippet.py"):
        return list(self.checker.check(
            module_at(tmp_path, rel_path, source)))

    # positives -----------------------------------------------------------

    def test_raw_request_construction(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.ldap.operations import SearchRequest\n"
            "def probe():\n"
            "    return SearchRequest(base_dn='x')\n")
        assert rules_of(findings) == ["API001"]

    def test_aliased_raw_request_evasion(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.ldap.operations import ModifyRequest as MR\n"
            "def probe():\n"
            "    return MR(dn='x')\n")
        assert rules_of(findings) == ["API001"]

    def test_legacy_shim_call(self, tmp_path):
        findings = self.run(tmp_path,
                            "def drive(udr, request):\n"
                            "    yield from udr.execute(request)\n")
        assert rules_of(findings) == ["API002"]

    def test_legacy_shim_through_local_alias(self, tmp_path):
        findings = self.run(tmp_path,
                            "def drive(udr, ops):\n"
                            "    facade = udr\n"
                            "    return facade.execute_batch(ops)\n")
        assert rules_of(findings) == ["API002"]

    def test_examples_tree_is_policed_too(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.ldap.operations import DeleteRequest\n"
            "DeleteRequest(dn='x')\n",
            rel_path="examples/snippet.py")
        assert rules_of(findings) == ["API001"]

    # negatives -----------------------------------------------------------

    def test_typed_operations_are_clean(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.api.operations import Read, Write\n"
            "def drive(session, imsi):\n"
            "    yield from session.call(Read(imsi))\n"
            "    yield from session.call(Write(imsi, {'a': 1}))\n")
        assert findings == []

    def test_core_layer_access_is_explicit_and_legal(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def drive(udr, request, deadline):\n"
            "    yield from udr.pipeline.execute(request)\n"
            "    udr.dispatcher.submit(request, deadline=deadline)\n")
        assert findings == []

    def test_api_layer_itself_may_build_requests(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.ldap.operations import SearchRequest\n"
            "def encode():\n"
            "    return SearchRequest(base_dn='x')\n",
            rel_path="src/repro/api/operations.py")
        assert findings == []

    def test_annotations_do_not_match(self, tmp_path):
        findings = self.run(
            tmp_path,
            "from repro.ldap.operations import SearchRequest\n"
            "def handle(request: SearchRequest) -> None:\n"
            "    session = object()\n"
            "    session.call(request)\n")
        assert findings == []


# ---------------------------------------------------------------------------
# exception hygiene (EXC001/EXC002)
# ---------------------------------------------------------------------------

class TestExceptionHygieneChecker:
    checker = ExceptionHygieneChecker()

    def run(self, tmp_path, source):
        return list(self.checker.check(
            module_at(tmp_path, "src/repro/core/snippet.py", source)))

    # positives -----------------------------------------------------------

    def test_bare_except_pass(self, tmp_path):
        findings = self.run(tmp_path,
                            "def swallow(op):\n"
                            "    try:\n"
                            "        op()\n"
                            "    except:\n"
                            "        pass\n")
        assert rules_of(findings) == ["EXC001"]

    def test_except_exception_continue(self, tmp_path):
        findings = self.run(tmp_path,
                            "def drain(ops):\n"
                            "    for op in ops:\n"
                            "        try:\n"
                            "            op()\n"
                            "        except Exception:\n"
                            "            continue\n")
        assert rules_of(findings) == ["EXC001"]

    def test_reraise_without_from(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def translate(op):\n"
            "    try:\n"
            "        op()\n"
            "    except KeyError as error:\n"
            "        raise RuntimeError('lookup failed')\n")
        assert rules_of(findings) == ["EXC002"]

    def test_nested_raise_without_from(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def translate(op, strict):\n"
            "    try:\n"
            "        op()\n"
            "    except ValueError:\n"
            "        if strict:\n"
            "            raise RuntimeError('bad value')\n"
            "        return None\n")
        assert rules_of(findings) == ["EXC002"]

    # negatives -----------------------------------------------------------

    def test_specific_exception_pass_is_legal(self, tmp_path):
        findings = self.run(tmp_path,
                            "def tolerate(op, NetworkError):\n"
                            "    try:\n"
                            "        op()\n"
                            "    except NetworkError:\n"
                            "        pass\n")
        # ``except <SpecificType>: pass`` is a deliberate tolerance window,
        # not a catch-all swallow.
        assert findings == []

    def test_raise_from_and_bare_raise_are_legal(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def translate(op):\n"
            "    try:\n"
            "        op()\n"
            "    except KeyError as error:\n"
            "        raise RuntimeError('lookup failed') from error\n"
            "    except ValueError:\n"
            "        raise\n")
        assert findings == []

    def test_explicit_from_none_is_legal(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def translate(op):\n"
            "    try:\n"
            "        op()\n"
            "    except KeyError:\n"
            "        raise RuntimeError('lookup failed') from None\n")
        assert findings == []

    def test_handler_that_records_then_returns_is_legal(self, tmp_path):
        findings = self.run(tmp_path,
                            "def tolerate(op, log):\n"
                            "    try:\n"
                            "        op()\n"
                            "    except Exception as error:\n"
                            "        log.append(error)\n")
        assert findings == []

    def test_function_defined_in_handler_not_flagged(self, tmp_path):
        findings = self.run(
            tmp_path,
            "def build(op):\n"
            "    try:\n"
            "        op()\n"
            "    except KeyError:\n"
            "        def fail():\n"
            "            raise RuntimeError('later, elsewhere')\n"
            "        return fail\n")
        assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:

    def test_same_line_and_next_line_forms(self):
        found = parse_suppressions("p.py", [
            "x = clock()  # reprolint: disable=DET001 -- measured on purpose",
            "# reprolint: disable=LAY001,MET001 -- spanning form",
            "import repro.api",
        ])
        assert [(s.line, s.applies_to) for s in found] == [(1, 1), (2, 3)]
        assert found[0].justified and found[0].rules == ("DET001",)
        assert found[1].rules == ("LAY001", "MET001")

    def test_unjustified_suppression_detected(self):
        found = parse_suppressions("p.py",
                                   ["x = 1  # reprolint: disable=DET001"])
        assert not found[0].justified

    def test_suppressed_findings_counted_not_failed(self, tmp_path):
        module_at(tmp_path, "src/repro/storage/snippet.py",
                  "import time\n"
                  "# reprolint: disable=DET001 -- fixture\n"
                  "t = time.time()\n")
        engine = LintEngine(tmp_path, checkers=[DeterminismChecker()])
        report = engine.run()
        assert report.findings == []
        assert rules_of(report.suppressed) == ["DET001"]
        assert len(report.suppressions) == 1

    def test_every_committed_suppression_is_justified(self):
        """Acceptance: zero unjustified suppressions under src/repro/."""
        engine = LintEngine(REPO_ROOT)
        report = engine.run()
        unjustified = [s for s in report.unjustified_suppressions()
                       if s.path.startswith("src/repro/")]
        assert unjustified == [], \
            [s.render() for s in unjustified]


# ---------------------------------------------------------------------------
# baseline semantics
# ---------------------------------------------------------------------------

class TestBaseline:

    def seeded_engine(self, tmp_path):
        module_at(tmp_path, "src/repro/storage/one.py",
                  "import time\nt = time.time()\n")
        module_at(tmp_path, "src/repro/storage/two.py",
                  "import time\nt = time.sleep(1)\n")
        return LintEngine(tmp_path, checkers=[DeterminismChecker()])

    def test_baseline_suppresses_exactly_its_findings(self, tmp_path):
        engine = self.seeded_engine(tmp_path)
        full = engine.run()
        assert len(full.findings) == 2
        first, second = full.findings
        baseline = {first.baseline_key()}
        partial = engine.run(baseline=baseline)
        assert [f.baseline_key() for f in partial.baselined] == \
            [first.baseline_key()]
        assert [f.baseline_key() for f in partial.findings] == \
            [second.baseline_key()]

    def test_format_baseline_is_sorted_and_deduped(self, tmp_path):
        engine = self.seeded_engine(tmp_path)
        report = engine.run()
        text = format_baseline(report.findings + report.findings)
        assert baseline_is_normalised(text)
        entries = [line for line in text.splitlines()
                   if line and not line.startswith("#")]
        assert entries == sorted(set(entries)) and len(entries) == 2

    def test_roundtrip_through_file(self, tmp_path):
        engine = self.seeded_engine(tmp_path)
        report = engine.run()
        target = tmp_path / "baseline"
        target.write_text(format_baseline(report.findings),
                          encoding="utf-8")
        assert engine.run(baseline=load_baseline(target)).findings == []

    def test_committed_baseline_is_normalised_and_preexisting_only(self):
        committed = REPO_ROOT / ".reprolint-baseline"
        text = committed.read_text(encoding="utf-8")
        assert baseline_is_normalised(text)
        # Every baselined key must still correspond to a real finding --
        # a stale entry means the violation was fixed and the baseline
        # must shrink (the burn-down direction only).
        engine = LintEngine(REPO_ROOT)
        report = engine.run(baseline=load_baseline(committed))
        live_keys = {f.baseline_key()
                     for f in report.findings + report.baselined}
        assert load_baseline(committed) <= live_keys


# ---------------------------------------------------------------------------
# the CLI and the five seeded violations (acceptance criteria)
# ---------------------------------------------------------------------------

SEEDED_VIOLATIONS = {
    "DET001": ("src/repro/storage/wal.py",
               "\n\ndef _seeded_violation():\n"
               "    import time\n"
               "    return time.time()\n"),
    "LAY001": ("src/repro/storage/wal.py",
               "\n\ndef _seeded_violation():\n"
               "    from repro.api import session as _s\n"
               "    return _s\n"),
    "MET001": ("src/repro/replication/mux.py",
               "\n\ndef _seeded_violation(metrics):\n"
               "    metrics.increment('replication.mux.wakeup')\n"),
    "API001": ("src/repro/experiments/common.py",
               "\n\nfrom repro.ldap.operations import "
               "SearchRequest as _SR\n"
               "def _seeded_violation():\n"
               "    return _SR(base_dn='x')\n"),
    "EXC001": ("src/repro/core/pipeline.py",
               "\n\ndef _seeded_violation(op):\n"
               "    try:\n"
               "        op()\n"
               "    except Exception:\n"
               "        pass\n"),
}


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(REPROLINT), *args],
        capture_output=True, text=True, cwd=str(cwd))


@pytest.fixture(scope="module")
def scratch_src(tmp_path_factory):
    """A scratch copy of src/ (module-scoped: copied once, ~180 files)."""
    scratch = tmp_path_factory.mktemp("scratch-tree")
    shutil.copytree(REPO_ROOT / "src", scratch / "src",
                    ignore=shutil.ignore_patterns("__pycache__"))
    return scratch


class TestCliAcceptance:

    def test_exits_zero_on_the_committed_tree(self):
        result = run_cli("--baseline")
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize("rule", sorted(SEEDED_VIOLATIONS))
    def test_seeded_violation_fails_the_run(self, scratch_src, rule):
        rel_path, payload = SEEDED_VIOLATIONS[rule]
        target = scratch_src / rel_path
        original = target.read_text(encoding="utf-8")
        try:
            target.write_text(original + payload, encoding="utf-8")
            result = run_cli("--root", str(scratch_src))
            assert result.returncode == 1, result.stdout + result.stderr
            assert rule in result.stdout
        finally:
            target.write_text(original, encoding="utf-8")

    def test_scratch_copy_itself_is_clean(self, scratch_src):
        result = run_cli("--root", str(scratch_src))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_unjustified_suppression_in_repro_fails(self, tmp_path):
        module_at(tmp_path, "src/repro/storage/snippet.py",
                  "import time\n"
                  "t = time.time()  # reprolint: disable=DET001\n")
        result = run_cli("--root", str(tmp_path))
        assert result.returncode == 1
        assert "justification" in result.stderr

    def test_list_rules_covers_all_five_checkers(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule in ("DET001", "DET002", "DET003", "LAY001", "MET001",
                     "API001", "API002", "EXC001", "EXC002"):
            assert rule in result.stdout
        assert set(rule_catalogue()) >= {
            "DET001", "LAY001", "MET001", "API001", "EXC001"}

    def test_write_baseline_roundtrip(self, tmp_path):
        module_at(tmp_path, "src/repro/storage/snippet.py",
                  "import time\nt = time.time()\n")
        assert run_cli("--root", str(tmp_path)).returncode == 1
        written = run_cli("--root", str(tmp_path), "--write-baseline")
        assert written.returncode == 0
        assert (tmp_path / ".reprolint-baseline").exists()
        result = run_cli("--root", str(tmp_path), "--baseline")
        assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

class TestEngine:

    def test_syntax_error_reported_not_crashed(self, tmp_path):
        path = tmp_path / "src" / "repro" / "storage" / "broken.py"
        path.parent.mkdir(parents=True)
        path.write_text("def broken(:\n", encoding="utf-8")
        report = LintEngine(tmp_path, checkers=[]).run()
        assert rules_of(report.findings) == ["ENG001"]

    def test_findings_sorted_by_path_line_rule(self, tmp_path):
        module_at(tmp_path, "src/repro/storage/b.py",
                  "import time\nt = time.time()\n")
        module_at(tmp_path, "src/repro/storage/a.py",
                  "import time\nt = time.sleep(0)\n")
        report = LintEngine(
            tmp_path, checkers=[DeterminismChecker()]).run()
        assert [f.path for f in report.findings] == \
            ["src/repro/storage/a.py", "src/repro/storage/b.py"]

    def test_default_checkers_all_load(self):
        assert len(default_checkers()) == 5

    def test_full_tree_run_is_clean(self):
        """The committed tree passes every checker with no baseline."""
        report = LintEngine(REPO_ROOT).run()
        assert report.findings == [], \
            [finding.render() for finding in report.findings]
