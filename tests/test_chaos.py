"""Chaos campaigns: schedule validation, determinism, clean invariants.

* **validation** -- :meth:`FaultSchedule.validate` rejects overlapping
  same-target incidents and duplicate corruptions, while cross-category
  compound faults stay legal;
* **determinism** -- same-tick incidents fire in a stable seeded order,
  and the same ``(simulation seed, campaign seed)`` pair replays the
  identical campaign: incidents, promotions, commit counts and verdict;
* **the checker bites** -- a planted split-brain write is caught, so a
  clean campaign verdict means something;
* **campaigns run clean** -- seeded campaigns over a membership-enabled
  deployment under live traffic finish with zero split-brain writes,
  zero acked writes lost, and converged replicas/locators.
"""

import pytest

from repro.api.operations import Read, Write
from repro.core import ClientType, UDRConfig
from repro.core.config import MembershipPolicy
from repro.core.udr import UDRNetworkFunction
from repro.faults import (
    ChaosCampaign,
    FaultInjector,
    FaultSchedule,
    InvariantChecker,
    PartitionIncident,
    SilentCorruption,
    SiteDisaster,
    run_campaigns,
)
from repro.net import NetworkPartition
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr

DURATION = 8.0


def chaos_udr(seed=3, subscribers=18, traffic_until=None, rate=40.0):
    """A started membership-enabled deployment with optional live traffic."""
    config = UDRConfig(seed=seed, name="chaos-test",
                       membership=MembershipPolicy())
    udr = UDRNetworkFunction(config)
    udr.start()
    generator = SubscriberGenerator(config.regions, seed=seed)
    profiles = generator.generate(subscribers)
    udr.load_subscriber_base(profiles)
    if traffic_until is not None:
        sessions = [udr.attach(f"fe-{site.name}", site,
                               client_type=ClientType.APPLICATION_FE)
                    .session()
                    for site in udr.topology.sites]

        def traffic():
            rng = udr.sim.rng("chaos.traffic")
            index = 0
            while udr.sim.now < traffic_until:
                yield udr.sim.timeout(rng.expovariate(rate))
                profile = profiles[index % len(profiles)]
                operation = Write(profile.identities.imsi,
                                  {"servingMsc": f"m-{index}"}) \
                    if index % 3 else Read(profile.identities.imsi)
                sessions[index % len(sessions)].submit(operation)
                index += 1

        udr.sim.process(traffic(), name="chaos:traffic")
    return udr


class TestScheduleValidation:
    def test_overlapping_disasters_on_one_site_are_rejected(self):
        schedule = FaultSchedule() \
            .add_disaster(SiteDisaster("spain-dc1", start=1.0, duration=3.0)) \
            .add_disaster(SiteDisaster("spain-dc1", start=2.0, duration=3.0))
        with pytest.raises(ValueError, match="overlapping disasters"):
            schedule.validate()

    def test_sequential_disasters_on_one_site_are_fine(self):
        FaultSchedule() \
            .add_disaster(SiteDisaster("spain-dc1", start=1.0, duration=1.0)) \
            .add_disaster(SiteDisaster("spain-dc1", start=3.0, duration=1.0)) \
            .validate()

    def test_overlapping_partitions_sharing_a_site_are_rejected(self):
        udr, _ = build_udr(UDRConfig(seed=3), subscribers=6)
        site = udr.topology.sites[0]
        schedule = FaultSchedule() \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(site), start=1.0, duration=2.0)) \
            .add_partition(PartitionIncident(
                NetworkPartition.one_way(site), start=2.0, duration=2.0))
        with pytest.raises(ValueError, match="share"):
            schedule.validate()

    def test_overlapping_partitions_of_disjoint_sites_are_fine(self):
        udr, _ = build_udr(UDRConfig(seed=3), subscribers=6)
        first, second = udr.topology.sites[0], udr.topology.sites[1]
        FaultSchedule() \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(first), start=1.0, duration=2.0)) \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(second), start=1.5, duration=2.0)) \
            .validate()

    def test_duplicate_corruptions_are_rejected(self):
        schedule = FaultSchedule() \
            .add_corruption(SilentCorruption("spain-dc1", 0, "byte_flip",
                                             at=1.0)) \
            .add_corruption(SilentCorruption("spain-dc1", 0, "byte_flip",
                                             at=1.0))
        with pytest.raises(ValueError, match="duplicate corruption"):
            schedule.validate()

    def test_cross_category_overlap_is_a_legal_compound_fault(self):
        udr, _ = build_udr(UDRConfig(seed=3), subscribers=6)
        site = udr.topology.sites[0]
        FaultSchedule() \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(site), start=1.0, duration=2.0)) \
            .add_disaster(SiteDisaster(site.name, start=1.5, duration=2.0)) \
            .add_corruption(SilentCorruption(site.name, 0, "byte_flip",
                                             at=2.0)) \
            .validate()

    def test_injector_start_validates(self):
        udr, _ = build_udr(UDRConfig(seed=3), subscribers=6)
        schedule = FaultSchedule() \
            .add_disaster(SiteDisaster("spain-dc1", start=1.0, duration=3.0)) \
            .add_disaster(SiteDisaster("spain-dc1", start=2.0, duration=3.0))
        with pytest.raises(ValueError):
            FaultInjector(udr, schedule).start()


class TestScheduleDeterminism:
    @staticmethod
    def _spawn_order(seed):
        udr, _ = build_udr(UDRConfig(seed=seed), subscribers=6)
        sites = udr.topology.sites
        schedule = FaultSchedule() \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(sites[0]), start=1.0,
                duration=0.5)) \
            .add_partition(PartitionIncident(
                NetworkPartition.isolating(sites[1]), start=1.0,
                duration=0.5)) \
            .add_disaster(SiteDisaster(sites[2].name, start=1.0,
                                       duration=0.5)) \
            .add_corruption(SilentCorruption(sites[0].name, 0, "byte_flip",
                                             at=1.0))
        names = []
        original = udr.sim.process

        def recording(generator, name=None, **kwargs):
            names.append(name)
            return original(generator, name=name, **kwargs)

        udr.sim.process = recording
        FaultInjector(udr, schedule).start()
        udr.sim.process = original
        return names

    def test_same_tick_incidents_fire_in_a_stable_seeded_order(self):
        first = self._spawn_order(seed=3)
        second = self._spawn_order(seed=3)
        assert first == second
        assert len(first) == 4

    def test_different_seeds_explore_different_interleavings(self):
        orders = {tuple(self._spawn_order(seed=seed))
                  for seed in range(10)}
        assert len(orders) > 1

    def test_same_campaign_seed_replays_identically(self):
        reports = [
            ChaosCampaign(chaos_udr(traffic_until=DURATION), seed=5,
                          duration=DURATION, incidents=3, quiesce=3.0).run()
            for _ in range(2)]
        assert reports[0].incidents == reports[1].incidents
        assert reports[0].summary() == reports[1].summary()
        assert reports[0].origin_commits == reports[1].origin_commits

    def test_campaign_validates_its_own_plan(self):
        campaign = ChaosCampaign(chaos_udr(), seed=5, duration=DURATION,
                                 incidents=3)
        campaign.plan().validate()

    def test_campaign_rejects_bad_parameters(self):
        udr = chaos_udr()
        with pytest.raises(ValueError):
            ChaosCampaign(udr, seed=1, duration=0)
        with pytest.raises(ValueError):
            ChaosCampaign(udr, seed=1, incidents=0)


class TestInvariantChecker:
    def test_planted_split_brain_write_is_caught(self):
        udr = chaos_udr()
        checker = InvariantChecker(udr)
        replica_set = udr.replica_sets[0]
        slave = replica_set.slave_names()[0]
        transaction = replica_set.copy_on(slave).transactions.begin()
        transaction.write("rogue", {"v": 1})
        transaction.commit(timestamp=udr.sim.now)
        assert checker.split_brain_writes == 1
        assert any(violation.kind == "split_brain_write"
                   for violation in checker.violations)
        checker.close()

    def test_closed_checker_stops_listening(self):
        udr = chaos_udr()
        checker = InvariantChecker(udr)
        checker.close()
        replica_set = udr.replica_sets[0]
        slave = replica_set.slave_names()[0]
        transaction = replica_set.copy_on(slave).transactions.begin()
        transaction.write("rogue", {"v": 1})
        transaction.commit(timestamp=udr.sim.now)
        assert checker.split_brain_writes == 0

    def test_quiet_deployment_passes_the_final_check(self):
        udr = chaos_udr(traffic_until=1.0)
        checker = InvariantChecker(udr)
        udr.sim.run(until=udr.sim.now + 3.0)
        replicas, locators = checker.final_check()
        assert replicas and locators
        assert checker.violations == []
        checker.close()


class TestCampaignsRunClean:
    def test_seeded_campaigns_are_clean_under_live_traffic(self):
        reports = run_campaigns(
            lambda seed: chaos_udr(seed=seed, traffic_until=DURATION),
            seeds=(1, 2, 3), duration=DURATION, incidents=3, quiesce=3.0)
        for report in reports:
            assert report.clean, report.violations
            assert report.split_brain_writes == 0
            assert report.acked_writes_lost == 0
            assert report.replicas_converged and report.locators_converged
            assert report.origin_commits > 0
        assert any(report.promotions > 0 for report in reports)
