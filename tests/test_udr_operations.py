"""Integration tests for the UDR operation path (reads, writes, failures)."""

import pytest

from repro.core import (
    ClientType,
    LocationMode,
    PartitionPolicy,
    ReplicationMode,
    UDRConfig,
    UDRNetworkFunction,
)
from repro.ldap import (
    AddRequest,
    DeleteRequest,
    ModifyRequest,
    ResultCode,
    SearchRequest,
    SubscriberSchema,
)
from repro.net import NetworkPartition
from repro.subscriber import SubscriberGenerator

from tests.conftest import build_udr, fe_site_for, run_to_completion


def search_for(profile):
    return SearchRequest(dn=SubscriberSchema.subscriber_dn(
        profile.identities.imsi))


def modify_for(profile, **changes):
    return ModifyRequest(dn=SubscriberSchema.subscriber_dn(
        profile.identities.imsi), changes=dict(changes))


class TestDeploymentBuild:
    def test_structure_matches_config(self, small_udr):
        udr, _ = small_udr
        config = udr.config
        assert len(udr.topology.sites) == config.total_sites
        assert len(udr.elements) == config.total_storage_elements
        assert len(udr.points_of_access) == config.total_sites
        assert len(udr.replica_sets) == config.total_storage_elements

    def test_every_partition_has_geo_dispersed_copies(self, small_udr):
        udr, _ = small_udr
        for replica_set in udr.replica_sets.values():
            sites = {replica_set.element(name).site
                     for name in replica_set.member_names}
            assert len(sites) == udr.config.replication_factor, \
                "each copy of a partition lives at a different site"

    def test_subscriber_base_loaded_consistently(self, small_udr):
        udr, profiles = small_udr
        assert udr.subscribers_loaded == len(profiles)
        profile = profiles[0]
        record = udr.subscriber_record(profile.identities.imsi)
        assert record is not None
        assert record["msisdn"] == profile.identities.msisdn

    def test_home_region_placement_respected(self, small_udr):
        udr, profiles = small_udr
        misplaced = 0
        for profile in profiles:
            locator = next(iter(udr.locators.values()))
            element_name = locator.locate("imsi", profile.identities.imsi)
            element = udr.elements[element_name]
            if element.site.region.name != profile.home_region:
                misplaced += 1
        assert misplaced == 0, \
            "home-region placement stores every profile in its home region"


class TestReads:
    def test_read_by_imsi_returns_profile(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok
        assert response.entry["imsi"] == profile.identities.imsi
        assert response.latency > 0

    def test_read_by_msisdn_filter(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[1]
        request = SearchRequest(
            dn=SubscriberSchema.BASE_DN,
            filter_text=f"(msisdn={profile.identities.msisdn})")
        response = run_to_completion(
            udr, udr.execute(request, ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok
        assert response.entry["imsi"] == profile.identities.imsi

    def test_requested_attributes_filter_entry(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        request = SearchRequest(
            dn=SubscriberSchema.subscriber_dn(profile.identities.imsi),
            attributes=("authKey",))
        response = run_to_completion(
            udr, udr.execute(request, ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert set(response.entry) == {"authKey", "dn"}

    def test_unknown_subscriber_is_no_such_object(self, fresh_udr):
        udr, _ = fresh_udr
        request = SearchRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"))
        response = run_to_completion(
            udr, udr.execute(request, ClientType.APPLICATION_FE,
                             udr.topology.sites[0]))
        assert response.result_code is ResultCode.NO_SUCH_OBJECT

    def test_local_read_meets_ten_millisecond_target(self, fresh_udr):
        """Requirement 4: local index-based reads stay under ~10 ms."""
        udr, profiles = fresh_udr
        profile = profiles[0]
        site = fe_site_for(udr, profile)
        for _ in range(5):
            run_to_completion(
                udr, udr.execute(search_for(profile),
                                 ClientType.APPLICATION_FE, site))
        recorder = udr.metrics.latency(ClientType.APPLICATION_FE.value)
        assert recorder.mean() < 0.020, \
            "reads served in the subscriber's home region stay fast"

    def test_fe_read_can_be_served_from_slave(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        # Read from a site that is NOT the subscriber's home region: with
        # slave reads enabled the FE may still be served by a nearby copy.
        other_site = next(site for site in udr.topology.sites
                          if site.region.name != profile.home_region)
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             other_site))
        assert response.ok

    def test_provisioning_reads_only_master(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.PROVISIONING,
                             udr.topology.sites[0]))
        assert response.ok
        replica_set = udr._replica_set_of_element(response.served_from)
        assert response.served_from == replica_set.master_element_name


class TestWrites:
    def test_modify_updates_record(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        response = run_to_completion(
            udr, udr.execute(modify_for(profile, servingMsc="msc-42"),
                             ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok
        record = udr.subscriber_record(profile.identities.imsi)
        assert record["servingMsc"] == "msc-42"

    def test_add_then_read_roundtrip(self, fresh_udr):
        udr, _ = fresh_udr
        generator = SubscriberGenerator(udr.config.regions, seed=321)
        new_profile = generator.generate_one()
        add = AddRequest(
            dn=SubscriberSchema.subscriber_dn(new_profile.identities.imsi),
            attributes=new_profile.to_record())
        site = udr.topology.sites[0]
        response = run_to_completion(
            udr, udr.execute(add, ClientType.PROVISIONING, site))
        assert response.ok
        read = run_to_completion(
            udr, udr.execute(search_for(new_profile),
                             ClientType.APPLICATION_FE, site))
        assert read.ok

    def test_duplicate_add_rejected(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        add = AddRequest(
            dn=SubscriberSchema.subscriber_dn(profile.identities.imsi),
            attributes=profile.to_record())
        response = run_to_completion(
            udr, udr.execute(add, ClientType.PROVISIONING,
                             udr.topology.sites[0]))
        assert response.result_code is ResultCode.ENTRY_ALREADY_EXISTS

    def test_delete_removes_record_and_location(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[2]
        delete = DeleteRequest(
            dn=SubscriberSchema.subscriber_dn(profile.identities.imsi))
        response = run_to_completion(
            udr, udr.execute(delete, ClientType.PROVISIONING,
                             udr.topology.sites[0]))
        assert response.ok
        read = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert read.result_code is ResultCode.NO_SUCH_OBJECT

    def test_modify_unknown_subscriber_fails(self, fresh_udr):
        udr, _ = fresh_udr
        request = ModifyRequest(
            dn=SubscriberSchema.subscriber_dn("999999999999999"),
            changes={"servingMsc": "x"})
        response = run_to_completion(
            udr, udr.execute(request, ClientType.PROVISIONING,
                             udr.topology.sites[0]))
        assert response.result_code is ResultCode.NO_SUCH_OBJECT

    def test_writes_replicate_asynchronously_to_slaves(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        run_to_completion(
            udr, udr.execute(modify_for(profile, servingMsc="msc-repl"),
                             ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        udr.sim.run_for(2.0)  # let the replication channels catch up
        locator = next(iter(udr.locators.values()))
        element_name = locator.locate("imsi", profile.identities.imsi)
        replica_set = udr._replica_set_of_element(element_name)
        key = profile.key
        for slave in replica_set.slave_names():
            value = replica_set.copy_on(slave).store.get(key)
            assert value is not None and value["servingMsc"] == "msc-repl"


class TestPartitionBehaviour:
    def isolate_master_region(self, udr, profile):
        """Partition the subscriber's home region away from the rest."""
        region = udr.topology.region(profile.home_region)
        partition = NetworkPartition.splitting_regions(udr.topology, region)
        udr.network.apply_partition(partition)
        return partition

    def other_region_site(self, udr, profile):
        return next(site for site in udr.topology.sites
                    if site.region.name != profile.home_region)

    def test_write_from_wrong_side_fails_under_pc(self, fresh_udr):
        """Section 4.1: provisioning writes fail when the master is cut off."""
        udr, profiles = fresh_udr
        profile = profiles[0]
        self.isolate_master_region(udr, profile)
        response = run_to_completion(
            udr, udr.execute(modify_for(profile, svcBarPremium=True),
                             ClientType.PROVISIONING,
                             self.other_region_site(udr, profile)))
        assert response.result_code is ResultCode.UNAVAILABLE

    def test_read_from_wrong_side_served_by_slave(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        self.isolate_master_region(udr, profile)
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             self.other_region_site(udr, profile)))
        # With replication factor 2 the slave copy may or may not be on the
        # reachable side; when it is, the FE read succeeds despite the
        # partition.  Assert the dichotomy the paper describes.
        if response.ok:
            locator = next(iter(udr.locators.values()))
            owner = locator.locate("imsi", profile.identities.imsi)
            replica_set = udr._replica_set_of_element(owner)
            assert response.served_from != replica_set.master_element_name, \
                "the read was served by a slave copy, not the cut-off master"
        else:
            assert response.result_code is ResultCode.UNAVAILABLE

    def test_write_succeeds_under_multimaster(self):
        config = UDRConfig(
            partition_policy=PartitionPolicy.PREFER_AVAILABILITY, seed=7)
        udr, profiles = build_udr(config=config)
        profile = profiles[0]
        self.isolate_master_region(udr, profile)
        response = run_to_completion(
            udr, udr.execute(modify_for(profile, svcBarPremium=True),
                             ClientType.PROVISIONING,
                             self.other_region_site(udr, profile)))
        # Succeeds whenever any copy is reachable on the client's side.
        if response.ok:
            coordinator = udr.coordinators[
                udr._primary_partition_of_element[
                    next(iter(udr.locators.values())).locate(
                        "imsi", profile.identities.imsi)]]
            assert coordinator.stats.degraded_writes >= 0
        else:
            assert response.result_code is ResultCode.UNAVAILABLE

    def test_healing_partition_restores_writes(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        partition = self.isolate_master_region(udr, profile)
        udr.network.heal_partition(partition)
        response = run_to_completion(
            udr, udr.execute(modify_for(profile, svcBarPremium=True),
                             ClientType.PROVISIONING,
                             self.other_region_site(udr, profile)))
        assert response.ok


class TestElementFailures:
    def test_crashed_master_with_failover_keeps_serving(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        locator = next(iter(udr.locators.values()))
        element_name = locator.locate("imsi", profile.identities.imsi)
        udr.crash_element(element_name)
        promotions = udr.fail_over(element_name)
        assert promotions, "a slave copy was promoted"
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok

    def test_write_fails_when_master_down_without_failover(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        locator = next(iter(udr.locators.values()))
        element_name = locator.locate("imsi", profile.identities.imsi)
        udr.crash_element(element_name)
        response = run_to_completion(
            udr, udr.execute(modify_for(profile, svcBarPremium=True),
                             ClientType.PROVISIONING,
                             udr.topology.sites[0]))
        assert response.result_code is ResultCode.UNAVAILABLE

    def test_recovered_element_serves_again(self, fresh_udr):
        udr, profiles = fresh_udr
        profile = profiles[0]
        locator = next(iter(udr.locators.values()))
        element_name = locator.locate("imsi", profile.identities.imsi)
        udr.crash_element(element_name)
        udr.recover_element(element_name)
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok


class TestAlternativeLocationModes:
    def test_cached_locator_mode_serves_reads(self):
        config = UDRConfig(location_mode=LocationMode.CACHED_MAPS, seed=7)
        udr, profiles = build_udr(config=config, subscribers=20)
        profile = profiles[0]
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok

    def test_consistent_hash_mode_serves_reads(self):
        config = UDRConfig(location_mode=LocationMode.CONSISTENT_HASH, seed=7)
        udr, profiles = build_udr(config=config, subscribers=20)
        profile = profiles[0]
        response = run_to_completion(
            udr, udr.execute(search_for(profile), ClientType.APPLICATION_FE,
                             fe_site_for(udr, profile)))
        assert response.ok

    def test_quorum_mode_write_pays_latency(self):
        async_udr, async_profiles = build_udr(
            config=UDRConfig(seed=7), subscribers=20)
        quorum_udr, quorum_profiles = build_udr(
            config=UDRConfig(replication_mode=ReplicationMode.QUORUM, seed=7),
            subscribers=20)
        responses = {}
        for label, (udr, profiles) in {
                "async": (async_udr, async_profiles),
                "quorum": (quorum_udr, quorum_profiles)}.items():
            profile = profiles[0]
            responses[label] = run_to_completion(
                udr, udr.execute(modify_for(profile, svcBarPremium=True),
                                 ClientType.PROVISIONING,
                                 fe_site_for(udr, profile)))
            assert responses[label].ok
        assert responses["quorum"].latency > responses["async"].latency


class TestScaleOut:
    def test_new_cluster_locator_syncs_before_serving(self, fresh_udr):
        udr, profiles = fresh_udr
        poa, sync_process = udr.scale_out_new_cluster("spain")
        assert sync_process is not None
        assert not poa.can_serve(), "PoA unavailable while maps sync"
        udr.sim.run(until=udr.sim.now + 60.0)
        assert poa.can_serve()
        assert poa.locator.locate(
            "imsi", profiles[0].identities.imsi) is not None

    def test_scale_out_with_hash_locator_is_immediate(self):
        config = UDRConfig(location_mode=LocationMode.CONSISTENT_HASH, seed=7)
        udr, _ = build_udr(config=config, subscribers=10)
        poa, sync_process = udr.scale_out_new_cluster("sweden")
        assert sync_process is None
        assert poa.can_serve()
