"""Runtime gate: experiment code issues zero legacy entry-point calls.

``scripts/check_api_boundaries.py`` greps the experiment sources for the
deprecated ``udr.execute``/``udr.submit``/``udr.call``/``udr.execute_batch``
shims; this suite closes the loophole a grep cannot see (helpers, lambdas,
indirection) by *running* representative experiments with every shim
instrumented and asserting ``api.legacy_calls`` stays at zero.  Together
they are the CI contract that the session API is the experiments' only
front door.
"""

from __future__ import annotations

import pytest

from repro.core.config import ClientType, UDRConfig
from repro.core.udr import UDRNetworkFunction
from repro.experiments import e14_latency, e15_batch_throughput, e18_session_qos
from repro.experiments.common import (
    ClientPool,
    build_loaded_udr,
    drive,
    read_request,
)


@pytest.fixture
def legacy_calls(monkeypatch):
    """Record every legacy shim invocation on any UDR built while active."""
    recorded = []
    original = UDRNetworkFunction._count_legacy_call

    def spy(self, entry_point):
        recorded.append(entry_point)
        original(self, entry_point)

    monkeypatch.setattr(UDRNetworkFunction, "_count_legacy_call", spy)
    return recorded


class TestLegacyCallGate:
    def test_spy_sees_a_legacy_call(self, legacy_calls):
        """The instrumentation is live: one shim call is one recorded entry.

        Without this, a rename of ``_count_legacy_call`` would turn the
        whole gate into a silent no-op.
        """
        udr, profiles = build_loaded_udr(UDRConfig(seed=3), subscribers=4,
                                         seed=3)
        site = udr.topology.sites[0]
        drive(udr, udr.execute(read_request(profiles[0]),
                               ClientType.APPLICATION_FE, site))
        assert legacy_calls == ["execute"]
        assert udr.metrics.counter("api.legacy_calls") == 1
        assert udr.metrics.counter("api.legacy_calls.execute") == 1

    def test_session_traffic_counts_nothing(self, legacy_calls):
        udr, profiles = build_loaded_udr(UDRConfig(seed=3), subscribers=4,
                                         seed=3)
        pool = ClientPool(udr, prefix="hygiene")
        site = udr.topology.sites[0]
        for profile in profiles:
            response = drive(udr, pool.call(read_request(profile),
                                            ClientType.APPLICATION_FE, site))
            assert response.ok
        assert legacy_calls == []
        assert udr.metrics.counter("api.legacy_calls") == 0

    def test_direct_mode_experiments_stay_legacy_free(self, legacy_calls):
        """e14 (sequential reads) and e15 (explicit batches) end-to-end."""
        e14_latency.run(subscribers=8, operations=6, seed=5)
        e15_batch_throughput.run(batch_sizes=(1, 4), operations=16, seed=5)
        assert legacy_calls == []

    def test_dispatcher_mode_experiment_stays_legacy_free(self, legacy_calls):
        """e18's arrival-driven flood, baseline arm included.

        The baseline arm submits raw dispatcher tickets on purpose -- that
        is the *core layer*, not a deprecated shim, and must not count.
        """
        e18_session_qos.run(deadline_budgets=(25,), signalling_ops=12,
                            flood_ops=60, seed=7)
        assert legacy_calls == []
