"""Unit tests for UDRConfig and the analytic core models."""

import pytest

from repro.core import (
    AvailabilityModel,
    CapacityModel,
    Characteristic,
    ClientType,
    FrashGraph,
    LocationMode,
    PartitionPolicy,
    Priority,
    ReplicationMode,
    RetryPolicy,
    UDRConfig,
    classify,
)
from repro.core.config import PlacementMode
from repro.core.pacelc import classify_both
from repro.sim import units


class TestUDRConfig:
    def test_defaults_are_the_papers_choices(self):
        config = UDRConfig()
        assert config.replication_mode is ReplicationMode.ASYNCHRONOUS
        assert config.partition_policy is PartitionPolicy.PREFER_CONSISTENCY
        assert config.location_mode is LocationMode.PROVISIONED_MAPS
        assert config.fe_reads_from_slave is True
        assert config.ps_reads_from_slave is False
        assert config.synchronous_commit is False

    def test_derived_quantities(self):
        config = UDRConfig(regions=("a", "b"), sites_per_region=2,
                           storage_elements_per_site=3)
        assert config.total_sites == 4
        assert config.total_storage_elements == 12
        assert config.total_subscriber_capacity == 12 * 2_000_000

    def test_read_policy_per_client(self):
        config = UDRConfig()
        assert config.reads_from_slave(ClientType.APPLICATION_FE)
        assert not config.reads_from_slave(ClientType.PROVISIONING)

    def test_replace_produces_modified_copy(self):
        config = UDRConfig()
        other = config.replace(partition_policy=PartitionPolicy.PREFER_AVAILABILITY)
        assert other.multi_master_enabled()
        assert not config.multi_master_enabled()

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            UDRConfig(regions=())
        with pytest.raises(ValueError):
            UDRConfig(replication_factor=0)
        with pytest.raises(ValueError):
            UDRConfig(replication_factor=100)
        with pytest.raises(ValueError):
            UDRConfig(write_quorum=5)
        with pytest.raises(ValueError):
            UDRConfig(checkpoint_period=0)
        with pytest.raises(ValueError):
            UDRConfig(storage_elements_per_site=0)

    def test_batch_knob_validation(self):
        with pytest.raises(ValueError):
            UDRConfig(batch_max_size=0)
        with pytest.raises(ValueError):
            UDRConfig(batch_linger_ticks=-1)
        with pytest.raises(ValueError):
            UDRConfig(priority_weights={"no-such-class": 1})
        with pytest.raises(ValueError):
            UDRConfig(priority_weights={"signalling": 0})

    def test_priority_defaults_and_weights(self):
        config = UDRConfig()
        assert Priority.for_client(ClientType.APPLICATION_FE) is \
            Priority.SIGNALLING
        assert Priority.for_client(ClientType.PROVISIONING) is \
            Priority.PROVISIONING
        assert config.weight_of(Priority.SIGNALLING) > \
            config.weight_of(Priority.PROVISIONING) > \
            config.weight_of(Priority.BULK)
        sparse = UDRConfig(priority_weights={"signalling": 8})
        assert sparse.weight_of(Priority.BULK) == 1, \
            "classes missing from the mapping default to weight 1"

    def test_replication_mux_knobs(self):
        config = UDRConfig()
        assert config.replication_mux, \
            "event-driven site-pair shipping is the default"
        assert config.replication_frame_bytes >= 0
        with pytest.raises(ValueError):
            UDRConfig(replication_frame_bytes=-1)

    def test_adaptive_linger_policy_validation(self):
        from repro.core import AdaptiveLingerPolicy
        assert UDRConfig().adaptive_linger is None, \
            "static lingering stays the default"
        policy = AdaptiveLingerPolicy(min_ticks=2, max_ticks=40, alpha=0.5)
        config = UDRConfig(adaptive_linger=policy)
        assert config.adaptive_linger.max_ticks == 40
        with pytest.raises(ValueError):
            AdaptiveLingerPolicy(min_ticks=-1)
        with pytest.raises(ValueError):
            AdaptiveLingerPolicy(min_ticks=10, max_ticks=5)
        with pytest.raises(ValueError):
            AdaptiveLingerPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveLingerPolicy(alpha=1.5)
        with pytest.raises(ValueError):
            AdaptiveLingerPolicy(fill_threshold=0.0)

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(retry_codes=("BUSY", "UNAVALIABLE"))  # typo caught
        policy = RetryPolicy(max_retries=3, backoff_tick=0.01,
                             backoff_multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(3) == pytest.approx(0.04)
        from repro.ldap import ResultCode
        assert policy.retries(ResultCode.BUSY)
        assert policy.retries(ResultCode.UNAVAILABLE)
        assert not policy.retries(ResultCode.NO_SUCH_OBJECT)


class TestCapacityModel:
    def test_paper_headline_numbers(self):
        report = CapacityModel().report()
        assert report.subscribers_per_element == 2_000_000
        assert report.subscribers_per_cluster == 32_000_000
        assert report.total_subscribers == 512_000_000
        assert report.ops_per_cluster == 32_000_000
        assert report.total_ops_per_second == 512_000_000 // 2 * 32  # 8.192e9
        assert report.ops_per_subscriber_per_second == pytest.approx(16.0)

    def test_comparison_with_paper_within_factor(self):
        comparison = CapacityModel().compare_with_paper()
        for name, (paper, model, ratio) in comparison.items():
            assert 0.8 <= ratio <= 1.25, \
                f"{name}: model {model} vs paper {paper}"

    def test_partition_size_about_200_gb(self):
        partition_bytes = CapacityModel().partition_bytes()
        assert 150 * units.GIB < partition_bytes < 250 * units.GIB

    def test_procedure_headroom(self):
        model = CapacityModel()
        classic = model.procedure_headroom(ops_per_procedure=2)
        ims = model.procedure_headroom(ops_per_procedure=6)
        assert classic > ims
        assert classic > 5, "plenty of headroom for classic procedures"

    def test_clusters_needed(self):
        model = CapacityModel()
        assert model.clusters_needed_for(0) == 0
        assert model.clusters_needed_for(1) == 1
        assert model.clusters_needed_for(32_000_000) == 1
        assert model.clusters_needed_for(32_000_001) == 2

    def test_subscribers_supported_at(self):
        model = CapacityModel()
        assert model.subscribers_supported_at(1_000_000, 10) == 100_000

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CapacityModel(subscribers_per_element=0)
        with pytest.raises(ValueError):
            CapacityModel().procedure_headroom(0)
        with pytest.raises(ValueError):
            CapacityModel().subscribers_supported_at(1, 0)
        with pytest.raises(ValueError):
            CapacityModel().clusters_needed_for(-1)


class TestFrashGraph:
    def test_paper_links_present(self):
        graph = FrashGraph()
        names = {link.name for link in graph.links}
        assert {"F-R", "F-A", "R-A", "H-R", "H-F"} <= names
        assert graph.link("H-F").weak
        assert graph.link("R-A").in_cap_scope
        assert graph.cap_scope_links() == [graph.link("R-A")]

    def test_unknown_link_rejected(self):
        with pytest.raises(KeyError):
            FrashGraph().link("X-Y")

    def test_default_config_positions_favour_fast(self):
        """Figure 6: the baseline design sits towards F on the F-A link."""
        graph = FrashGraph()
        fe = graph.evaluate(UDRConfig(), ClientType.APPLICATION_FE)
        assert fe["F-A"].position < 0.5
        assert fe["F-A"].favours() is Characteristic.FAST

    def test_ps_less_fast_than_fe_on_f_a_link(self):
        """Red (PS) dots sit closer to ACID than blue (FE) dots."""
        graph = FrashGraph()
        config = UDRConfig()
        fe = graph.evaluate(config, ClientType.APPLICATION_FE)
        ps = graph.evaluate(config, ClientType.PROVISIONING)
        assert ps["F-A"].position > fe["F-A"].position

    def test_default_favours_consistency_on_partition(self):
        graph = FrashGraph()
        positions = graph.evaluate(UDRConfig(), ClientType.PROVISIONING)
        assert positions["R-A"].position > 0.5, \
            "master-only writes push the R-A point towards ACID/consistency"

    def test_multimaster_moves_r_a_towards_resilience(self):
        graph = FrashGraph()
        base = graph.evaluate(UDRConfig(), ClientType.PROVISIONING)
        multi = graph.evaluate(
            UDRConfig(partition_policy=PartitionPolicy.PREFER_AVAILABILITY),
            ClientType.PROVISIONING)
        assert multi["R-A"].position < base["R-A"].position

    def test_quorum_replication_moves_f_a_towards_acid(self):
        graph = FrashGraph()
        async_pos = graph.evaluate(UDRConfig(), ClientType.PROVISIONING)
        quorum_pos = graph.evaluate(
            UDRConfig(replication_mode=ReplicationMode.QUORUM),
            ClientType.PROVISIONING)
        assert quorum_pos["F-A"].position > async_pos["F-A"].position

    def test_random_placement_hurts_h_r(self):
        graph = FrashGraph()
        home = graph.evaluate(UDRConfig(), ClientType.APPLICATION_FE)
        random_placement = graph.evaluate(
            UDRConfig(placement=PlacementMode.RANDOM),
            ClientType.APPLICATION_FE)
        assert random_placement["H-R"].position < home["H-R"].position

    def test_synchronous_commit_costs_more_speed(self):
        graph = FrashGraph()
        base = graph.evaluate(UDRConfig(), ClientType.PROVISIONING)
        sync = graph.evaluate(UDRConfig(synchronous_commit=True),
                              ClientType.PROVISIONING)
        assert sync["F-R"].position > base["F-R"].position

    def test_decisions_carry_rationale(self):
        decisions = FrashGraph().decisions_for(UDRConfig())
        assert all(decision.rationale for decision in decisions)
        assert any("READ_COMMITTED" in decision.name for decision in decisions)


class TestPacelc:
    def test_paper_classification_of_default_design(self):
        """Section 3.6: PA/EL for FE transactions, PC/EC for PS transactions."""
        verdicts = classify_both(UDRConfig())
        assert verdicts[ClientType.APPLICATION_FE].label == "PA/EL"
        assert verdicts[ClientType.PROVISIONING].label == "PC/EC"

    def test_multimaster_makes_provisioning_available_on_partition(self):
        config = UDRConfig(
            partition_policy=PartitionPolicy.PREFER_AVAILABILITY)
        verdict = classify(config, ClientType.PROVISIONING)
        assert verdict.on_partition == "A"

    def test_quorum_with_slave_reads_disabled_is_ec(self):
        config = UDRConfig(replication_mode=ReplicationMode.QUORUM,
                           fe_reads_from_slave=False)
        verdict = classify(config, ClientType.APPLICATION_FE)
        assert verdict.else_case == "C"

    def test_rationales_populated(self):
        verdict = classify(UDRConfig(), ClientType.PROVISIONING)
        assert verdict.rationale_partition
        assert verdict.rationale_else
        assert "PC/EC" in str(verdict) or verdict.label in str(verdict)


class TestAvailabilityModel:
    def test_replicated_design_meets_five_nines(self):
        model = AvailabilityModel(replication_factor=2,
                                  failover_time=10 * units.SECOND,
                                  partition_rate_per_year=2,
                                  partition_duration=60.0,
                                  write_share=0.1, remote_share=0.05)
        assert model.meets_five_nines()

    def test_unreplicated_design_fails_five_nines(self):
        model = AvailabilityModel(replication_factor=1)
        assert not model.meets_five_nines()
        assert model.availability() < units.FIVE_NINES

    def test_more_replicas_more_availability(self):
        one = AvailabilityModel(replication_factor=1).availability()
        two = AvailabilityModel(replication_factor=2).availability()
        three = AvailabilityModel(replication_factor=3).availability()
        assert one < two <= three

    def test_partitions_consume_budget(self):
        quiet = AvailabilityModel(partition_rate_per_year=0)
        noisy = AvailabilityModel(partition_rate_per_year=12,
                                  partition_duration=30 * units.MINUTE)
        assert noisy.downtime_per_year() > quiet.downtime_per_year()

    def test_budget_breakdown_sums(self):
        model = AvailabilityModel()
        breakdown = model.budget_breakdown()
        assert breakdown["element_failures"] + breakdown["network_partitions"] \
            == pytest.approx(model.downtime_per_year())

    def test_max_failover_time_budget(self):
        model = AvailabilityModel(partition_rate_per_year=0)
        limit = model.max_failover_time_for_five_nines()
        assert limit > 0
        tight = AvailabilityModel(partition_rate_per_year=0,
                                  failover_time=limit * 0.9)
        assert tight.meets_five_nines()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityModel(element_mtbf=0)
        with pytest.raises(ValueError):
            AvailabilityModel(replication_factor=0)
        with pytest.raises(ValueError):
            AvailabilityModel(write_share=2.0)
