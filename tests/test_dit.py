"""Unit tests for the interval-indexed DIT and the directory catalog."""

import random

import pytest

from repro.directory import DirectoryCatalog, DITIndex
from repro.ldap.dn import DistinguishedName
from repro.ldap.schema import SubscriberSchema
from repro.storage.records import TOMBSTONE
from repro.storage.wal import LogRecord, WriteOperation

BASE = DistinguishedName.parse("ou=subscribers,dc=udr,dc=example")


def _random_dns(rng, count):
    """Random DNs under BASE, up to three levels deep, some sharing paths."""
    dns = []
    for index in range(count):
        dn = BASE
        for level in range(rng.randint(1, 3)):
            dn = dn.child(("ou", "cn", "imsi")[level],
                          f"n{rng.randint(0, 12)}")
        # Disambiguate the leaf so every generated DN is unique.
        dns.append(dn.child("uid", f"u{index}"))
    return dns


def _brute_subtree(reference, base):
    return sorted(entry_id for dn, entry_id in reference.items()
                  if dn.is_descendant_of(base))


def _brute_one_level(reference, base):
    return sorted(entry_id for dn, entry_id in reference.items()
                  if len(dn) == len(base) + 1 and dn.is_descendant_of(base))


def _check_interval_invariant(dit):
    """pre/post must encode ancestry exactly, and _pres must stay sorted."""
    nodes = list(dit._order)
    assert dit._pres == sorted(dit._pres)
    assert [node.pre for node in dit._order] == dit._pres
    for node in nodes:
        assert node.pre < node.post
        ancestor = node.parent
        while ancestor is not None and ancestor.dn is not None:
            assert ancestor.pre < node.pre < ancestor.post
            ancestor = ancestor.parent


class TestDITIndex:
    def test_subtree_matches_bruteforce_on_random_trees(self):
        rng = random.Random(42)
        dit = DITIndex()
        reference = {}
        dns = _random_dns(rng, 300)
        for index, dn in enumerate(dns):
            dit.insert(dn, f"e{index}")
            reference[dn] = f"e{index}"
            if index % 3 == 2:  # interleave deletions
                victim = rng.choice(list(reference))
                assert dit.remove(victim)
                del reference[victim]
        _check_interval_invariant(dit)
        bases = [BASE] + [dn.parent() for dn in reference][:25]
        for base in bases:
            expected = _brute_subtree(reference, base)
            got = dit.subtree(base)
            if got is None:
                assert expected == []
                continue
            ids, comparisons = got
            assert sorted(ids) == expected
            assert comparisons >= 1
            one = dit.one_level(base)
            assert one is not None
            assert sorted(one[0]) == _brute_one_level(reference, base)

    def test_subtree_includes_base_entry_and_base_scope(self):
        dit = DITIndex()
        parent = BASE.child("cn", "group")
        dit.insert(parent, "parent")
        dit.insert(parent.child("uid", "a"), "a")
        ids, _ = dit.subtree(parent)
        assert sorted(ids) == ["a", "parent"]
        assert dit.base(parent) == (["parent"], 1)
        assert dit.base(BASE) == ([], 1)  # pure container
        assert dit.subtree(BASE.child("cn", "missing")) is None

    def test_document_order_preserved(self):
        dit = DITIndex()
        for index in range(50):
            dit.insert(BASE.child("imsi", f"{index:03d}"), f"e{index}")
        ids, _ = dit.subtree(BASE)
        assert ids == [f"e{index}" for index in range(50)]

    def test_relabels_amortised_on_flat_appends(self):
        dit = DITIndex()
        for index in range(5000):
            dit.insert(BASE.child("imsi", f"{index:06d}"), f"e{index}")
        # Gaps grow with fan-out at every relabel, so the count is
        # logarithmic in the number of appends, not linear.
        assert dit.relabels <= 2 * 5000 .bit_length()
        assert dit.entries == 5000

    def test_bulk_load_equivalent_to_incremental(self):
        rng = random.Random(7)
        dns = _random_dns(rng, 120)
        incremental = DITIndex()
        for index, dn in enumerate(dns):
            incremental.insert(dn, f"e{index}")
        bulk = DITIndex()
        bulk.bulk_load((dn, f"e{index}") for index, dn in enumerate(dns))
        assert bulk.relabels == 1
        for base in (BASE, dns[0].parent(), dns[-1].parent()):
            assert sorted(bulk.subtree(base)[0]) == \
                sorted(incremental.subtree(base)[0])
        _check_interval_invariant(bulk)

    def test_remove_prunes_empty_containers(self):
        dit = DITIndex()
        deep = BASE.child("ou", "left").child("cn", "leaf")
        dit.insert(deep, "leaf")
        assert dit.contains(deep.parent())
        assert dit.remove(deep)
        assert not dit.contains(deep)
        assert not dit.contains(deep.parent())
        assert not dit.remove(deep)  # already gone
        assert dit.entries == 0


def _record(lsn, *operations):
    return LogRecord(lsn=lsn, transaction_id=lsn, commit_seq=lsn,
                     operations=tuple(WriteOperation(key, value)
                                      for key, value in operations),
                     origin="test")


class TestDirectoryCatalog:
    def _catalog(self):
        return DirectoryCatalog(SubscriberSchema.catalog_view,
                                SubscriberSchema.INDEXED_ATTRIBUTES)

    def test_apply_commit_create_modify_delete(self):
        catalog = self._catalog()
        record = {"imsi": "214070000000001", "homeRegion": "spain",
                  "organisation": "org-1"}
        catalog.apply_commit(0, _record(1, ("sub:214070000000001", record)))
        key = "sub:214070000000001"
        dn = SubscriberSchema.subscriber_dn("214070000000001")
        assert catalog.dit.contains(dn)
        assert catalog.partition_of(key) == 0
        assert catalog.sort_key_of(key) == "214070000000001"
        assert catalog.attributes.equality_postings("homeRegion", "spain") \
            == {key}

        # MODIFY moves the entry between postings, never duplicates it.
        modified = dict(record, homeRegion="brazil")
        catalog.apply_commit(0, _record(2, (key, modified)))
        assert catalog.attributes.equality_postings("homeRegion", "spain") \
            == set()
        assert catalog.attributes.equality_postings("homeRegion", "brazil") \
            == {key}
        assert catalog.dit.entries == 1

        # DELETE (a tombstone) removes entry, postings and DIT node.
        catalog.apply_commit(0, _record(3, (key, TOMBSTONE)))
        assert not catalog.dit.contains(dn)
        assert catalog.entry(key) is None
        assert catalog.attributes.equality_postings("homeRegion", "brazil") \
            == set()

    def test_non_subscriber_keys_ignored(self):
        catalog = self._catalog()
        catalog.apply_commit(0, _record(1, ("meta:checkpoint", {"x": 1})))
        assert catalog.dit.entries == 0

    def test_scope_candidates_dispatch(self):
        catalog = self._catalog()
        catalog.bulk_load([
            (f"sub:21407000000000{index}",
             {"imsi": f"21407000000000{index}", "homeRegion": "spain"},
             index % 2)
            for index in range(4)
        ])
        from repro.ldap.operations import SearchScope
        base = SubscriberSchema.BASE_DN
        subtree = catalog.scope_candidates(base, SearchScope.SUBTREE)
        assert len(subtree[0]) == 4
        one = catalog.scope_candidates(base, SearchScope.ONE_LEVEL)
        assert sorted(one[0]) == sorted(subtree[0])  # flat tree
        entry_dn = SubscriberSchema.subscriber_dn("214070000000001")
        assert catalog.scope_candidates(entry_dn, SearchScope.BASE)[0] == \
            ["sub:214070000000001"]
        missing = SubscriberSchema.subscriber_dn("999")
        assert catalog.scope_candidates(missing, SearchScope.SUBTREE) is None

    def test_relabel_metric_flushes_deltas(self):
        from repro.metrics.collector import MetricsRegistry
        catalog = self._catalog()
        metrics = MetricsRegistry()
        catalog.bind_metrics(metrics)
        for index in range(2000):
            imsi = f"2140700000{index:05d}"
            catalog.apply_commit(0, _record(index + 1,
                                            (f"sub:{imsi}", {"imsi": imsi})))
        assert catalog.relabels > 0
        assert metrics.counter("directory.dit.relabels") == catalog.relabels
